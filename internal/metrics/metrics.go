// Package metrics computes the thermal and accuracy figures of merit
// reported by the experiments: hot-spot magnitude, spatial gradients
// and uniformity (the quantities Fig. 1 visualizes), the reliability
// and leakage proxies §4 argues about, and prediction-vs-ground-truth
// error measures.
package metrics

import (
	"math"

	"thermflow/internal/floorplan"
	"thermflow/internal/power"
	"thermflow/internal/thermal"
)

// Thermal summarizes one thermal state.
type Thermal struct {
	// Peak is the hottest cell temperature (K).
	Peak float64
	// Mean is the average cell temperature (K).
	Mean float64
	// Range is Peak minus the coldest cell (K).
	Range float64
	// StdDev is the spatial standard deviation (K) — the homogeneity
	// measure: the chessboard map of Fig. 1(c) is "homogenized", i.e.
	// low StdDev.
	StdDev float64
	// MaxGradient is the largest temperature difference between two
	// 4-adjacent cells (K) — the "steep thermal gradients" that
	// reduce reliability.
	MaxGradient float64
	// HotspotCells counts cells more than HotspotThreshold above the
	// mean.
	HotspotCells int
}

// HotspotThreshold is the rise above the spatial mean that qualifies a
// cell as a hot spot, in kelvin.
const HotspotThreshold = 5.0

// Summarize computes the thermal metrics of state s over floorplan fp.
func Summarize(s thermal.State, fp *floorplan.Floorplan) Thermal {
	m := Thermal{
		Peak:  s.Max(),
		Mean:  s.Mean(),
		Range: s.Max() - s.Min(),
	}
	for _, v := range s {
		d := v - m.Mean
		m.StdDev += d * d
	}
	if len(s) > 0 {
		m.StdDev = math.Sqrt(m.StdDev / float64(len(s)))
	}
	var scratch []int
	for c := range s {
		scratch = fp.Neighbors(c, scratch[:0])
		for _, n := range scratch {
			if d := math.Abs(s[c] - s[n]); d > m.MaxGradient {
				m.MaxGradient = d
			}
		}
		if s[c]-m.Mean > HotspotThreshold {
			m.HotspotCells++
		}
	}
	return m
}

// Boltzmann constant in eV/K, used by the Arrhenius MTTF proxy.
const boltzmannEV = 8.617333262e-5

// ArrheniusEa is the activation energy (eV) of the electromigration
// failure mechanism assumed by the MTTF proxy.
const ArrheniusEa = 0.7

// RelativeMTTF returns the worst-cell mean-time-to-failure of state s
// relative to operating uniformly at refTemp, using the Arrhenius
// model MTTF ∝ exp(Ea/kT). Values below 1 mean the hot spots degrade
// expected lifetime.
func RelativeMTTF(s thermal.State, refTemp float64) float64 {
	worst := math.Inf(1)
	for _, t := range s {
		r := math.Exp(ArrheniusEa/(boltzmannEV*t) - ArrheniusEa/(boltzmannEV*refTemp))
		if r < worst {
			worst = r
		}
	}
	if math.IsInf(worst, 1) {
		return 1
	}
	return worst
}

// LeakagePower returns the total leakage power (W) of the register
// file at state s: Σ cells leakage(T). Homogenized maps leak less than
// peaked ones of equal mean because leakage is convex in temperature
// (§4: "the thermal diffusion ... improves its reliability by
// decreasing leakage").
func LeakagePower(s thermal.State, tech power.Tech) float64 {
	total := 0.0
	for _, t := range s {
		total += tech.Leakage(t)
	}
	return total
}

// BankGating evaluates the §4 trade-off between spreading accesses and
// bank-level power gating: banks whose registers are all unused can be
// switched off, saving their leakage. usedRegs lists the registers the
// allocation assigned; the result reports how many of nBanks stripes
// are gateable and the leakage power saved at the ambient temperature.
func BankGating(usedRegs []int, fp *floorplan.Floorplan, nBanks int, tech power.Tech) (gateable int, savedW float64) {
	bankUsed := make([]bool, nBanks)
	for _, r := range usedRegs {
		bankUsed[fp.BankOf(fp.CellOf(r), nBanks)] = true
	}
	cellsPerBank := fp.NumCells() / nBanks
	leakPerCell := tech.Leakage(tech.TAmbient)
	for _, used := range bankUsed {
		if !used {
			gateable++
			savedW += float64(cellsPerBank) * leakPerCell
		}
	}
	return gateable, savedW
}

// RMSE returns the root-mean-square error between prediction and
// reference (same length).
func RMSE(pred, ref []float64) float64 {
	if len(pred) != len(ref) || len(pred) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - ref[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}

// MAE returns the mean absolute error between prediction and reference.
func MAE(pred, ref []float64) float64 {
	if len(pred) != len(ref) || len(pred) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - ref[i])
	}
	return sum / float64(len(pred))
}

// Pearson returns the linear correlation coefficient between prediction
// and reference. A constant series yields NaN.
func Pearson(pred, ref []float64) float64 {
	if len(pred) != len(ref) || len(pred) == 0 {
		return math.NaN()
	}
	n := float64(len(pred))
	var sx, sy float64
	for i := range pred {
		sx += pred[i]
		sy += ref[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range pred {
		dx, dy := pred[i]-mx, ref[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// TopKOverlap returns the fraction of the k highest-valued indices of
// the reference that also appear among the k highest-valued indices of
// the prediction — the "did we identify the right hot spots" measure.
func TopKOverlap(pred, ref []float64, k int) float64 {
	if len(pred) != len(ref) || k <= 0 {
		return math.NaN()
	}
	if k > len(pred) {
		k = len(pred)
	}
	top := func(xs []float64) map[int]bool {
		idx := make([]int, len(xs))
		for i := range idx {
			idx[i] = i
		}
		// Selection of the k largest (stable by index for ties).
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < len(idx); j++ {
				if xs[idx[j]] > xs[idx[best]] {
					best = j
				}
			}
			idx[i], idx[best] = idx[best], idx[i]
		}
		out := make(map[int]bool, k)
		for _, i := range idx[:k] {
			out[i] = true
		}
		return out
	}
	tp := top(pred)
	tr := top(ref)
	hits := 0
	for i := range tr {
		if tp[i] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}
