package floorplan

import (
	"fmt"
	"math"
)

// Layout selects how register numbers map onto grid cells.
type Layout int

// Available placements.
const (
	// RowMajor places register r at cell r (left-to-right,
	// top-to-bottom) — the layout implied by Fig. 1(a)'s ordered
	// free-list, where consecutively chosen registers are physical
	// neighbours.
	RowMajor Layout = iota
	// ColumnMajor places registers top-to-bottom, left-to-right.
	ColumnMajor
	// Banked splits registers into two horizontal banks: low half in
	// the top rows, high half in the bottom rows, each row-major.
	Banked
	// Checker interleaves register numbers across the two colours of a
	// chessboard: even registers occupy "black" cells, odd registers
	// "white" cells, so consecutive register numbers are never
	// physically adjacent.
	Checker
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case RowMajor:
		return "row-major"
	case ColumnMajor:
		return "column-major"
	case Banked:
		return "banked"
	case Checker:
		return "checker"
	}
	return fmt.Sprintf("layout(%d)", int(l))
}

// Layouts lists every placement.
var Layouts = []Layout{RowMajor, ColumnMajor, Banked, Checker}

// LayoutByName resolves a layout name ("row-major", "column-major",
// "banked", "checker").
func LayoutByName(name string) (Layout, bool) {
	for _, l := range Layouts {
		if l.String() == name {
			return l, true
		}
	}
	return RowMajor, false
}

// Floorplan is a W×H cell grid holding NumRegs physical registers.
type Floorplan struct {
	// Width and Height are the grid dimensions in cells.
	Width, Height int
	// NumRegs is the number of physical registers (≤ Width·Height).
	NumRegs int
	// CellEdge is the physical edge length of one cell in metres.
	CellEdge float64

	layout  Layout
	regCell []int // register -> cell
	cellReg []int // cell -> register or -1
}

// New builds a floorplan with the given register count, grid and
// layout. CellEdge defaults can be taken from power.Tech; pass the edge
// explicitly to keep this package free of dependencies.
func New(numRegs, w, h int, cellEdge float64, layout Layout) (*Floorplan, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("floorplan: invalid grid %dx%d", w, h)
	}
	if numRegs <= 0 || numRegs > w*h {
		return nil, fmt.Errorf("floorplan: %d registers do not fit a %dx%d grid", numRegs, w, h)
	}
	if cellEdge <= 0 {
		return nil, fmt.Errorf("floorplan: non-positive cell edge %g", cellEdge)
	}
	fp := &Floorplan{
		Width: w, Height: h, NumRegs: numRegs, CellEdge: cellEdge,
		layout:  layout,
		regCell: make([]int, numRegs),
		cellReg: make([]int, w*h),
	}
	for i := range fp.cellReg {
		fp.cellReg[i] = -1
	}
	for r := 0; r < numRegs; r++ {
		c, err := fp.place(r)
		if err != nil {
			return nil, err
		}
		fp.regCell[r] = c
		fp.cellReg[c] = r
	}
	return fp, nil
}

// Default returns the register file used throughout the experiments: 64
// registers on an 8×8 grid of 50 µm cells, row-major.
func Default() *Floorplan {
	fp, err := New(64, 8, 8, 50e-6, RowMajor)
	if err != nil {
		panic(err) // impossible for constants
	}
	return fp
}

// NewCustom builds a floorplan with an explicit register-to-cell
// placement (regCells[r] = cell of register r). Cells may be shared
// and cells without registers are allowed — the construction used to
// embed the register file inside a larger processor floorplan.
func NewCustom(w, h int, cellEdge float64, regCells []int) (*Floorplan, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("floorplan: invalid grid %dx%d", w, h)
	}
	if cellEdge <= 0 {
		return nil, fmt.Errorf("floorplan: non-positive cell edge %g", cellEdge)
	}
	if len(regCells) == 0 {
		return nil, fmt.Errorf("floorplan: no registers")
	}
	fp := &Floorplan{
		Width: w, Height: h, NumRegs: len(regCells), CellEdge: cellEdge,
		layout:  RowMajor,
		regCell: make([]int, len(regCells)),
		cellReg: make([]int, w*h),
	}
	for i := range fp.cellReg {
		fp.cellReg[i] = -1
	}
	for r, c := range regCells {
		if c < 0 || c >= w*h {
			return nil, fmt.Errorf("floorplan: register %d placed at invalid cell %d", r, c)
		}
		fp.regCell[r] = c
		if fp.cellReg[c] < 0 {
			fp.cellReg[c] = r
		}
	}
	return fp, nil
}

func (fp *Floorplan) place(r int) (int, error) {
	w, h := fp.Width, fp.Height
	switch fp.layout {
	case RowMajor:
		return r, nil
	case ColumnMajor:
		x := r / h
		y := r % h
		return y*w + x, nil
	case Banked:
		half := (fp.NumRegs + 1) / 2
		if r < half {
			return r, nil
		}
		// Second bank starts at the bottom half of the grid.
		offset := (h / 2) * w
		return offset + (r - half), nil
	case Checker:
		// Even registers on cells with (x+y) even, odd registers on
		// (x+y) odd, both in scan order.
		want := r % 2
		seen := 0
		for c := 0; c < w*h; c++ {
			x, y := c%w, c/w
			if (x+y)%2 == want {
				if seen == r/2 {
					return c, nil
				}
				seen++
			}
		}
		return 0, fmt.Errorf("floorplan: checker placement overflow for register %d", r)
	}
	return 0, fmt.Errorf("floorplan: unknown layout %v", fp.layout)
}

// Layout returns the placement scheme.
func (fp *Floorplan) Layout() Layout { return fp.layout }

// Coarsen returns a lower-resolution view of the floorplan: the same
// registers on a w2×h2 grid, each register mapped to the coarse cell
// covering its fine-grid position, with the cell edge scaled to keep
// the total area constant. Multiple registers share a coarse cell, so
// RegAt returns only one of them. This realizes the paper's §3
// granularity knob: "increasing the number of points would increase
// accuracy, but at the cost of increased computation time".
func (fp *Floorplan) Coarsen(w2, h2 int) (*Floorplan, error) {
	if w2 <= 0 || h2 <= 0 || w2 > fp.Width || h2 > fp.Height {
		return nil, fmt.Errorf("floorplan: cannot coarsen %dx%d to %dx%d",
			fp.Width, fp.Height, w2, h2)
	}
	out := &Floorplan{
		Width: w2, Height: h2, NumRegs: fp.NumRegs,
		CellEdge: fp.CellEdge * float64(fp.Width) / float64(w2),
		layout:   fp.layout,
		regCell:  make([]int, fp.NumRegs),
		cellReg:  make([]int, w2*h2),
	}
	for i := range out.cellReg {
		out.cellReg[i] = -1
	}
	for r := 0; r < fp.NumRegs; r++ {
		x, y := fp.XY(fp.regCell[r])
		cx := x * w2 / fp.Width
		cy := y * h2 / fp.Height
		c := cy*w2 + cx
		out.regCell[r] = c
		if out.cellReg[c] < 0 {
			out.cellReg[c] = r
		}
	}
	return out, nil
}

// NumCells returns the total number of grid cells.
func (fp *Floorplan) NumCells() int { return fp.Width * fp.Height }

// CellOf returns the cell index of physical register r.
func (fp *Floorplan) CellOf(r int) int {
	if r < 0 || r >= fp.NumRegs {
		panic(fmt.Sprintf("floorplan: register %d out of range [0,%d)", r, fp.NumRegs))
	}
	return fp.regCell[r]
}

// RegAt returns the register occupying cell c, or -1 for an empty cell.
func (fp *Floorplan) RegAt(c int) int { return fp.cellReg[c] }

// XY returns the grid coordinates of cell c.
func (fp *Floorplan) XY(c int) (x, y int) { return c % fp.Width, c / fp.Width }

// CellIndex returns the cell at grid coordinates (x, y).
func (fp *Floorplan) CellIndex(x, y int) int { return y*fp.Width + x }

// Neighbors appends the 4-connected neighbour cells of c to dst and
// returns it.
func (fp *Floorplan) Neighbors(c int, dst []int) []int {
	x, y := fp.XY(c)
	if x > 0 {
		dst = append(dst, c-1)
	}
	if x < fp.Width-1 {
		dst = append(dst, c+1)
	}
	if y > 0 {
		dst = append(dst, c-fp.Width)
	}
	if y < fp.Height-1 {
		dst = append(dst, c+fp.Width)
	}
	return dst
}

// CellDist returns the Euclidean distance between two cells in metres.
func (fp *Floorplan) CellDist(a, b int) float64 {
	ax, ay := fp.XY(a)
	bx, by := fp.XY(b)
	dx := float64(ax - bx)
	dy := float64(ay - by)
	return math.Hypot(dx, dy) * fp.CellEdge
}

// RegDist returns the Euclidean distance between two registers in
// metres.
func (fp *Floorplan) RegDist(r1, r2 int) float64 {
	return fp.CellDist(fp.CellOf(r1), fp.CellOf(r2))
}

// CellArea returns the area of one cell in m².
func (fp *Floorplan) CellArea() float64 { return fp.CellEdge * fp.CellEdge }

// BankOf returns the bank index of cell c when the grid is divided
// into nBanks horizontal stripes (the power-gating granularity of the
// §4 trade-off). nBanks must divide Height.
func (fp *Floorplan) BankOf(c, nBanks int) int {
	rowsPerBank := fp.Height / nBanks
	if rowsPerBank == 0 {
		rowsPerBank = 1
	}
	_, y := fp.XY(c)
	b := y / rowsPerBank
	if b >= nBanks {
		b = nBanks - 1
	}
	return b
}

// Adjacent reports whether two registers occupy 4-connected cells.
func (fp *Floorplan) Adjacent(r1, r2 int) bool {
	a, b := fp.CellOf(r1), fp.CellOf(r2)
	ax, ay := fp.XY(a)
	bx, by := fp.XY(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx+dy == 1
}
