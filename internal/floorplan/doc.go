// Package floorplan models the register-file floorplan: a rectangular
// grid of cells, one physical register per cell, with a configurable
// register-to-cell placement. The thermal analyses are "floorplan
// aware" (paper §3) through this package: power deposited by a
// register access lands in the register's cell, and heat diffuses
// between adjacent cells.
//
// Placements (Layout) decouple register numbering from physical
// position: RowMajor is the ordered free-list layout implied by
// Fig. 1(a), Checker makes consecutive register numbers physically
// non-adjacent, Banked splits the file into two halves. Compose a
// layout with an assignment policy (internal/regalloc) to separate
// "which register is chosen" from "where that register sits" —
// ablation A1 sweeps exactly that product.
//
// New validates grid dimensions against the register count;
// Default() is the paper's 64-register 8×8 file. CellOf/RegAt map
// between register numbers and grid cells; Coarsen merges cells for
// the multi-resolution experiments. On the wire (thermflow/api) a
// layout travels by name via LayoutByName.
package floorplan
