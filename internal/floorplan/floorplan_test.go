package floorplan

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name       string
		regs, w, h int
		edge       float64
	}{
		{"zero grid", 4, 0, 4, 50e-6},
		{"negative grid", 4, 4, -1, 50e-6},
		{"too many regs", 17, 4, 4, 50e-6},
		{"zero regs", 0, 4, 4, 50e-6},
		{"zero edge", 4, 4, 4, 0},
	}
	for _, tc := range cases {
		if _, err := New(tc.regs, tc.w, tc.h, tc.edge, RowMajor); err == nil {
			t.Errorf("%s: New succeeded, want error", tc.name)
		}
	}
}

func TestDefault(t *testing.T) {
	fp := Default()
	if fp.NumRegs != 64 || fp.Width != 8 || fp.Height != 8 {
		t.Fatalf("Default = %d regs on %dx%d", fp.NumRegs, fp.Width, fp.Height)
	}
	if fp.Layout() != RowMajor {
		t.Errorf("Default layout = %v", fp.Layout())
	}
	if fp.NumCells() != 64 {
		t.Errorf("NumCells = %d", fp.NumCells())
	}
}

func TestRowMajorPlacement(t *testing.T) {
	fp, err := New(16, 4, 4, 50e-6, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		if fp.CellOf(r) != r {
			t.Errorf("CellOf(%d) = %d, want %d", r, fp.CellOf(r), r)
		}
		if fp.RegAt(r) != r {
			t.Errorf("RegAt(%d) = %d", r, fp.RegAt(r))
		}
	}
	// Consecutive registers are adjacent within a row.
	if !fp.Adjacent(0, 1) || !fp.Adjacent(1, 2) {
		t.Error("row-major consecutive registers must be adjacent")
	}
	if fp.Adjacent(3, 4) {
		t.Error("registers 3,4 are on different rows' ends; not adjacent")
	}
}

func TestColumnMajorPlacement(t *testing.T) {
	fp, err := New(16, 4, 4, 50e-6, ColumnMajor)
	if err != nil {
		t.Fatal(err)
	}
	// Register 0 at (0,0), register 1 at (0,1).
	x, y := fp.XY(fp.CellOf(1))
	if x != 0 || y != 1 {
		t.Errorf("reg 1 at (%d,%d), want (0,1)", x, y)
	}
	x, y = fp.XY(fp.CellOf(4))
	if x != 1 || y != 0 {
		t.Errorf("reg 4 at (%d,%d), want (1,0)", x, y)
	}
}

func TestCheckerPlacement(t *testing.T) {
	fp, err := New(16, 4, 4, 50e-6, Checker)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		x, y := fp.XY(fp.CellOf(r))
		if (x+y)%2 != r%2 {
			t.Errorf("reg %d at (%d,%d): colour %d, want %d", r, x, y, (x+y)%2, r%2)
		}
	}
	// Consecutive registers are never 4-adjacent... actually opposite
	// colours ARE adjacent candidates; the invariant is same-colour
	// registers (r, r+2) are never adjacent.
	for r := 0; r+2 < 16; r++ {
		if fp.Adjacent(r, r+2) {
			t.Errorf("same-colour registers %d and %d are adjacent", r, r+2)
		}
	}
}

func TestBankedPlacement(t *testing.T) {
	fp, err := New(32, 8, 8, 50e-6, Banked)
	if err != nil {
		t.Fatal(err)
	}
	// First bank occupies rows 0-1, second bank rows 4-5.
	_, y := fp.XY(fp.CellOf(0))
	if y != 0 {
		t.Errorf("reg 0 row = %d, want 0", y)
	}
	_, y = fp.XY(fp.CellOf(16))
	if y != 4 {
		t.Errorf("reg 16 row = %d, want 4", y)
	}
	// No two registers share a cell.
	seen := map[int]bool{}
	for r := 0; r < 32; r++ {
		c := fp.CellOf(r)
		if seen[c] {
			t.Fatalf("cell %d used twice", c)
		}
		seen[c] = true
	}
}

func TestPlacementBijective(t *testing.T) {
	for _, layout := range []Layout{RowMajor, ColumnMajor, Banked, Checker} {
		fp, err := New(64, 8, 8, 50e-6, layout)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		seen := map[int]bool{}
		for r := 0; r < 64; r++ {
			c := fp.CellOf(r)
			if c < 0 || c >= 64 {
				t.Fatalf("%v: CellOf(%d) = %d out of range", layout, r, c)
			}
			if seen[c] {
				t.Fatalf("%v: cell %d assigned twice", layout, c)
			}
			seen[c] = true
			if fp.RegAt(c) != r {
				t.Errorf("%v: RegAt(CellOf(%d)) = %d", layout, r, fp.RegAt(c))
			}
		}
	}
}

func TestXYRoundTrip(t *testing.T) {
	fp := Default()
	for c := 0; c < fp.NumCells(); c++ {
		x, y := fp.XY(c)
		if fp.CellIndex(x, y) != c {
			t.Errorf("CellIndex(XY(%d)) = %d", c, fp.CellIndex(x, y))
		}
	}
}

func TestNeighbors(t *testing.T) {
	fp := Default()
	// Corner cell 0 has 2 neighbours.
	if n := fp.Neighbors(0, nil); len(n) != 2 {
		t.Errorf("corner neighbours = %v", n)
	}
	// Edge cell 1 has 3.
	if n := fp.Neighbors(1, nil); len(n) != 3 {
		t.Errorf("edge neighbours = %v", n)
	}
	// Interior cell has 4.
	c := fp.CellIndex(3, 3)
	if n := fp.Neighbors(c, nil); len(n) != 4 {
		t.Errorf("interior neighbours = %v", n)
	}
	// Appends to dst.
	base := []int{99}
	if n := fp.Neighbors(0, base); len(n) != 3 || n[0] != 99 {
		t.Errorf("Neighbors must append to dst: %v", n)
	}
}

func TestDistances(t *testing.T) {
	fp := Default()
	if d := fp.CellDist(0, 0); d != 0 {
		t.Errorf("self distance = %g", d)
	}
	if d := fp.CellDist(0, 1); math.Abs(d-50e-6) > 1e-12 {
		t.Errorf("adjacent distance = %g, want 50e-6", d)
	}
	diag := fp.CellDist(fp.CellIndex(0, 0), fp.CellIndex(1, 1))
	if math.Abs(diag-50e-6*math.Sqrt2) > 1e-12 {
		t.Errorf("diagonal distance = %g", diag)
	}
	if fp.RegDist(0, 1) != fp.CellDist(fp.CellOf(0), fp.CellOf(1)) {
		t.Error("RegDist inconsistent with CellDist")
	}
	if a := fp.CellArea(); math.Abs(a-2.5e-9) > 1e-15 {
		t.Errorf("CellArea = %g, want 2.5e-9", a)
	}
}

func TestCellOfPanics(t *testing.T) {
	fp := Default()
	defer func() {
		if recover() == nil {
			t.Error("CellOf out of range did not panic")
		}
	}()
	fp.CellOf(64)
}

func TestLayoutString(t *testing.T) {
	names := map[Layout]string{
		RowMajor: "row-major", ColumnMajor: "column-major",
		Banked: "banked", Checker: "checker", Layout(99): "layout(99)",
	}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("Layout(%d).String() = %q, want %q", int(l), l.String(), want)
		}
	}
}
