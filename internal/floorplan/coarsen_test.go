package floorplan

import (
	"math"
	"testing"
)

func TestCoarsenMapping(t *testing.T) {
	fp := Default() // 8x8
	c, err := fp.Coarsen(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Width != 4 || c.Height != 4 || c.NumRegs != 64 {
		t.Fatalf("coarsened = %dx%d with %d regs", c.Width, c.Height, c.NumRegs)
	}
	// Cell edge doubles to keep total area.
	if math.Abs(c.CellEdge-2*fp.CellEdge) > 1e-15 {
		t.Errorf("CellEdge = %g, want %g", c.CellEdge, 2*fp.CellEdge)
	}
	// Each register's coarse cell covers its fine position.
	for r := 0; r < 64; r++ {
		fx, fy := fp.XY(fp.CellOf(r))
		cx, cy := c.XY(c.CellOf(r))
		if fx/2 != cx || fy/2 != cy {
			t.Fatalf("register %d: fine (%d,%d) coarse (%d,%d)", r, fx, fy, cx, cy)
		}
	}
	// Exactly 4 registers share each coarse cell.
	counts := map[int]int{}
	for r := 0; r < 64; r++ {
		counts[c.CellOf(r)]++
	}
	for cell, n := range counts {
		if n != 4 {
			t.Errorf("coarse cell %d holds %d registers, want 4", cell, n)
		}
	}
	// RegAt returns a representative occupant.
	for cell := 0; cell < c.NumCells(); cell++ {
		r := c.RegAt(cell)
		if r < 0 || c.CellOf(r) != cell {
			t.Errorf("RegAt(%d) = %d inconsistent", cell, r)
		}
	}
}

func TestCoarsenToSingleCell(t *testing.T) {
	fp := Default()
	c, err := fp.Coarsen(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 64; r++ {
		if c.CellOf(r) != 0 {
			t.Fatalf("register %d not in the single cell", r)
		}
	}
}

func TestCoarsenErrors(t *testing.T) {
	fp := Default()
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {16, 8}, {8, 16}} {
		if _, err := fp.Coarsen(dims[0], dims[1]); err == nil {
			t.Errorf("Coarsen(%d,%d) accepted", dims[0], dims[1])
		}
	}
}

func TestBankOf(t *testing.T) {
	fp := Default() // 8 rows
	// 8 banks of one row each.
	for c := 0; c < fp.NumCells(); c++ {
		_, y := fp.XY(c)
		if got := fp.BankOf(c, 8); got != y {
			t.Fatalf("BankOf(%d, 8) = %d, want row %d", c, got, y)
		}
	}
	// 2 banks of four rows.
	if fp.BankOf(fp.CellIndex(0, 3), 2) != 0 {
		t.Error("row 3 should be bank 0 of 2")
	}
	if fp.BankOf(fp.CellIndex(0, 4), 2) != 1 {
		t.Error("row 4 should be bank 1 of 2")
	}
	// More banks than rows degrades gracefully: one row per bank, the
	// surplus banks stay empty.
	if b := fp.BankOf(fp.CellIndex(0, 7), 16); b != 7 {
		t.Errorf("BankOf with surplus banks = %d, want 7", b)
	}
}

func TestNewCustom(t *testing.T) {
	regCells := []int{5, 6, 9, 10}
	fp, err := NewCustom(4, 4, 50e-6, regCells)
	if err != nil {
		t.Fatal(err)
	}
	for r, want := range regCells {
		if fp.CellOf(r) != want {
			t.Errorf("CellOf(%d) = %d, want %d", r, fp.CellOf(r), want)
		}
	}
	// Shared cells allowed.
	shared, err := NewCustom(2, 2, 50e-6, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if shared.RegAt(0) != 0 {
		t.Error("RegAt should return the first occupant")
	}
	// Errors.
	if _, err := NewCustom(0, 2, 50e-6, []int{0}); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := NewCustom(2, 2, 0, []int{0}); err == nil {
		t.Error("zero edge accepted")
	}
	if _, err := NewCustom(2, 2, 50e-6, nil); err == nil {
		t.Error("no registers accepted")
	}
	if _, err := NewCustom(2, 2, 50e-6, []int{7}); err == nil {
		t.Error("out-of-grid cell accepted")
	}
}
