package regions_test

import (
	"fmt"
	"testing"

	"thermflow/internal/cfg"
	"thermflow/internal/ir"
	"thermflow/internal/regions"
	"thermflow/internal/workload"
)

// TestPartitionInvariants runs the partition over the kernel suite and
// 60 random modules across a spread of requested region counts and
// validates every structural invariant: exact block cover, cut edges
// == inter-region edges, all cuts forward, loops whole.
func TestPartitionInvariants(t *testing.T) {
	type tc struct {
		name string
		fn   *ir.Function
	}
	var cases []tc
	for _, k := range workload.All() {
		cases = append(cases, tc{"kernel/" + k.Name, k.Fn})
	}
	for seed := int64(0); seed < 60; seed++ {
		fn := workload.Generate(workload.GenConfig{
			Seed:         seed,
			Pressure:     4 + int(seed%10),
			Segments:     1 + int(seed%6),
			LoopDepth:    1 + int(seed%3),
			Irregularity: float64(seed%10) / 10,
		})
		cases = append(cases, tc{fmt.Sprintf("random/%d", seed), fn})
	}
	for _, c := range cases {
		g := cfg.Build(c.fn)
		for _, k := range []int{1, 2, 3, 4, 8, 64, 1 << 20} {
			plan := regions.Partition(g, regions.Options{MaxRegions: k})
			if err := regions.Validate(g, plan); err != nil {
				t.Fatalf("%s k=%d: %v", c.name, k, err)
			}
			if n := plan.NumRegions(); n > k || (len(g.RPO) > 0 && n < 1) {
				t.Fatalf("%s k=%d: got %d regions", c.name, k, n)
			}
		}
	}
}

// TestPartitionMegaWidth asserts the mega-module partitions into a
// wide DAG: with one region per arm available, the independent arms
// land in distinct regions with no edges between them, so an exact
// solve can sweep them all concurrently.
func TestPartitionMegaWidth(t *testing.T) {
	const arms = 8
	fn := workload.GenerateMega(workload.MegaConfig{Seed: 1, Arms: arms})
	g := cfg.Build(fn)
	for _, k := range []int{arms, arms + 2} {
		plan := regions.Partition(g, regions.Options{MaxRegions: k})
		if err := regions.Validate(g, plan); err != nil {
			t.Fatal(err)
		}
		if n := plan.NumRegions(); n < arms-1 {
			t.Fatalf("k=%d: mega-module yielded only %d regions, want >= %d", k, n, arms-1)
		}
		// Width: assign each region its longest-path depth in the
		// region DAG (the wave it sweeps in) and take the largest wave.
		// That is exactly the concurrency the exact-mode solver
		// achieves. Region index order is a topological order (cut
		// edges always point up), so one forward pass suffices.
		nr := plan.NumRegions()
		depth := make([]int, nr)
		for r := 0; r < nr; r++ {
			for _, c := range plan.Cuts {
				if c.ToRegion == r && depth[c.FromRegion]+1 > depth[r] {
					depth[r] = depth[c.FromRegion] + 1
				}
			}
		}
		waves := make(map[int]int)
		width := 0
		for r := 0; r < nr; r++ {
			waves[depth[r]]++
			if waves[depth[r]] > width {
				width = waves[depth[r]]
			}
		}
		if width < arms/2 {
			t.Fatalf("k=%d: region DAG max wave %d, want >= %d (depths %v)", k, width, arms/2, depth)
		}
	}
}

// TestPartitionDeterministic asserts equal inputs give identical plans.
func TestPartitionDeterministic(t *testing.T) {
	fn := workload.Generate(workload.GenConfig{Seed: 42, Segments: 5, LoopDepth: 2})
	g := cfg.Build(fn)
	a := regions.Partition(g, regions.Options{MaxRegions: 7})
	b := regions.Partition(g, regions.Options{MaxRegions: 7})
	if a.NumRegions() != b.NumRegions() || len(a.Cuts) != len(b.Cuts) {
		t.Fatalf("plans differ: %d/%d regions, %d/%d cuts",
			a.NumRegions(), b.NumRegions(), len(a.Cuts), len(b.Cuts))
	}
	for i := range a.Regions {
		if a.Regions[i].First != b.Regions[i].First || a.Regions[i].Last != b.Regions[i].Last {
			t.Fatalf("region %d intervals differ", i)
		}
	}
	for i := range a.Cuts {
		if a.Cuts[i] != b.Cuts[i] {
			t.Fatalf("cut %d differs: %+v vs %+v", i, a.Cuts[i], b.Cuts[i])
		}
	}
}

// TestPartitionSingleLoop: a CFG that is one big loop has no legal cut
// and must fall back to a single region regardless of the request.
func TestPartitionSingleLoop(t *testing.T) {
	src := `func f() {
entry:
  n = const 8
  i = const 0
  one = const 1
  br head
head:
  c = cmplt i, n
  cbr c, body, done
body:
  i = add i, one
  br head
done:
  ret i
}`
	fn, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(fn)
	plan := regions.Partition(g, regions.Options{MaxRegions: 16})
	// Legal cuts exist only outside the head..body loop interval; the
	// loop itself must land in one region.
	if err := regions.Validate(g, plan); err != nil {
		t.Fatal(err)
	}
	li := g.Loops(0)
	if len(li.Loops) != 1 {
		t.Fatalf("expected 1 loop, got %d", len(li.Loops))
	}
	l := li.Loops[0]
	r := -1
	for b := range l.Blocks {
		if r == -1 {
			r = plan.RegionOf(b)
		} else if plan.RegionOf(b) != r {
			t.Fatal("loop split across regions")
		}
	}
}
