// Package regions cuts a function's CFG into contiguous
// reverse-postorder intervals that can be solved independently and
// composed at their boundaries.
//
// A cut position p (between RPO positions p-1 and p) is legal iff no
// RPO-backward edge spans it: every edge u→v with rpoPos(v) < p ≤
// rpoPos(u) forbids the cut. Backward edges are exactly the back edges
// of natural loops (plus irreducible retreat edges), so legal cuts fall
// only on loop-nest boundaries — a loop is never split across regions,
// and a dominator subtree that forms a contiguous RPO interval stays
// whole. The induced region graph is therefore a DAG whose edges all
// point from lower to higher region index, which is what lets a
// partitioned solve schedule regions in waves (exact mode) or iterate
// them in Jacobi rounds (slack mode) while exchanging only the states
// on the cut edges.
package regions

import (
	"fmt"
	"sort"

	"thermflow/internal/cfg"
	"thermflow/internal/ir"
)

// Options parameterizes Partition.
type Options struct {
	// MaxRegions bounds the number of regions produced. Values <= 1
	// yield a single region (the monolithic plan). The actual count may
	// be lower when the CFG has fewer legal cut positions.
	MaxRegions int
	// Weights optionally gives the solve cost of each block, indexed by
	// ir.Block.Index; the greedy cut choice balances total weight per
	// region. Nil falls back to instruction counts.
	Weights []float64
}

// Region is one contiguous RPO interval of the partition.
type Region struct {
	// Index is the region's position in Plan.Regions; region edges only
	// ever point from lower to higher index.
	Index int
	// First and Last are the inclusive RPO position range.
	First, Last int
	// Blocks lists the member blocks in RPO order.
	Blocks []*ir.Block
	// Weight is the summed block weight (solve cost estimate).
	Weight float64
}

// CutEdge is a CFG edge crossing a region boundary; only the thermal
// state of the From block's exit flows across it between rounds.
type CutEdge struct {
	// From and To are block indices.
	From, To int
	// FromRegion and ToRegion are region indices; FromRegion < ToRegion
	// always holds (cut edges are RPO-forward by construction).
	FromRegion, ToRegion int
}

// Plan is a region partition of one function's CFG.
type Plan struct {
	// Regions lists the regions in RPO order of their intervals.
	Regions []Region
	// Cuts lists every inter-region CFG edge, deduplicated, ordered by
	// (From, To).
	Cuts []CutEdge
	// BlockRegion maps block index -> region index; -1 for unreachable
	// blocks (which belong to no region and are never solved).
	BlockRegion []int
}

// NumRegions returns the number of regions in the plan.
func (p *Plan) NumRegions() int { return len(p.Regions) }

// RegionOf returns the region index of block b, or -1 if unreachable.
func (p *Plan) RegionOf(b *ir.Block) int { return p.BlockRegion[b.Index] }

// Partition cuts g into at most opts.MaxRegions contiguous RPO
// intervals along legal (loop-nest) boundaries, greedily balancing
// block weight. The plan is deterministic for a given graph and
// options. A CFG with no legal cut position (one giant loop, or an
// irreducible retreat edge spanning everything) yields one region.
func Partition(g *cfg.Graph, opts Options) *Plan {
	n := len(g.RPO)
	plan := &Plan{BlockRegion: make([]int, g.NumBlocks())}
	for i := range plan.BlockRegion {
		plan.BlockRegion[i] = -1
	}
	if n == 0 {
		return plan
	}

	weights := make([]float64, n) // by RPO position
	for p, b := range g.RPO {
		w := 0.0
		if opts.Weights != nil && b.Index < len(opts.Weights) {
			w = opts.Weights[b.Index]
		}
		if w <= 0 {
			w = float64(len(b.Instrs))
		}
		if w <= 0 {
			w = 1
		}
		weights[p] = w
	}

	// Mark illegal cut positions: an edge u→v with rpoPos(v) ≤
	// rpoPos(u) (a retreat edge) forbids every cut in
	// (rpoPos(v), rpoPos(u)]. Difference-array interval marking keeps
	// this O(blocks + edges).
	forbid := make([]int, n+1)
	for _, u := range g.RPO {
		pu := g.RPOPos(u)
		for _, v := range u.Succs() {
			if !g.Reachable(v) {
				continue
			}
			if pv := g.RPOPos(v); pv <= pu {
				forbid[pv+1]++
				forbid[pu+1]--
			}
		}
	}
	var legal []int // legal cut positions in 1..n-1, ascending
	cover := 0
	for p := 1; p < n; p++ {
		cover += forbid[p]
		if cover == 0 {
			legal = append(legal, p)
		}
	}

	k := opts.MaxRegions
	if k < 1 {
		k = 1
	}
	if k > len(legal)+1 {
		k = len(legal) + 1
	}

	// Greedy balance with a dominator-subtree preference: for each
	// ideal boundary at weight i·W/k, consider the legal positions
	// whose prefix weight lies within half a region of the target and
	// cut at the one whose block sits shallowest in the dominator tree
	// (ties: nearest the target). A cut at a shallow block is a
	// dominator-subtree boundary — the seam between independent arms or
	// top-level loop nests — so the induced region DAG stays wide,
	// where a depth-blind nearest-to-target choice can pair the tail of
	// one arm with the head of the next and serialize every region.
	depths := domDepths(g)
	prefix := make([]float64, n+1)
	for p := 0; p < n; p++ {
		prefix[p+1] = prefix[p] + weights[p]
	}
	total := prefix[n]
	halfspan := total / (2 * float64(k))
	var cutPos []int
	last := 0 // previous chosen cut position
	for i := 1; i < k; i++ {
		target := total * float64(i) / float64(k)
		lo := sort.SearchInts(legal, last+1)
		if lo >= len(legal) {
			break
		}
		best := -1
		bestDepth := 0
		bestDist := 0.0
		for j := lo; j < len(legal); j++ {
			p := legal[j]
			dist := prefix[p] - target
			if dist > halfspan {
				break
			}
			if dist < -halfspan {
				continue
			}
			if dist < 0 {
				dist = -dist
			}
			if d := depths[p]; best < 0 || d < bestDepth || (d == bestDepth && dist < bestDist) {
				best, bestDepth, bestDist = p, d, dist
			}
		}
		if best < 0 {
			// Window empty: fall back to the legal position nearest the
			// target.
			j := lo + sort.Search(len(legal)-lo, func(j int) bool {
				return prefix[legal[lo+j]] >= target
			})
			if j >= len(legal) {
				j = len(legal) - 1
			}
			if j > lo && target-prefix[legal[j-1]] < prefix[legal[j]]-target {
				j--
			}
			best = legal[j]
		}
		cutPos = append(cutPos, best)
		last = best
	}

	// Materialize regions from the chosen cut positions.
	start := 0
	for _, p := range append(cutPos, n) {
		r := Region{Index: len(plan.Regions), First: start, Last: p - 1}
		for q := start; q < p; q++ {
			b := g.RPO[q]
			r.Blocks = append(r.Blocks, b)
			r.Weight += weights[q]
			plan.BlockRegion[b.Index] = r.Index
		}
		plan.Regions = append(plan.Regions, r)
		start = p
	}

	// Collect cut edges: every inter-region edge, deduplicated.
	seen := make(map[cfg.EdgeKey]bool)
	for _, u := range g.RPO {
		ru := plan.BlockRegion[u.Index]
		for _, v := range u.Succs() {
			if !g.Reachable(v) {
				continue
			}
			rv := plan.BlockRegion[v.Index]
			if ru == rv {
				continue
			}
			key := cfg.Edge(u, v)
			if seen[key] {
				continue
			}
			seen[key] = true
			plan.Cuts = append(plan.Cuts, CutEdge{
				From: u.Index, To: v.Index, FromRegion: ru, ToRegion: rv,
			})
		}
	}
	sort.Slice(plan.Cuts, func(i, j int) bool {
		if plan.Cuts[i].From != plan.Cuts[j].From {
			return plan.Cuts[i].From < plan.Cuts[j].From
		}
		return plan.Cuts[i].To < plan.Cuts[j].To
	})
	return plan
}

// domDepths returns each RPO position's depth in the dominator tree
// (entry = 0), using the graph's cached tree. A block's idom always
// precedes it in RPO, so one forward pass suffices.
func domDepths(g *cfg.Graph) []int {
	n := len(g.RPO)
	dom := g.Dom()
	depths := make([]int, n)
	for p := 1; p < n; p++ {
		b := g.RPO[p]
		if id := dom.Idom(b); id != nil && id != b {
			depths[p] = depths[g.RPOPos(id)] + 1
		}
	}
	return depths
}

// Validate checks the plan's structural invariants against its graph:
// every reachable block is in exactly one region, regions are
// contiguous RPO intervals, cut edges are exactly the inter-region
// edges and all point forward, and no natural loop is split. It is the
// property-test oracle and a cheap paranoia check for distributed
// callers.
func Validate(g *cfg.Graph, p *Plan) error {
	seen := make([]int, g.NumBlocks())
	for i := range seen {
		seen[i] = -1
	}
	for _, r := range p.Regions {
		if r.Last-r.First+1 != len(r.Blocks) {
			return fmt.Errorf("region %d: interval [%d,%d] holds %d blocks", r.Index, r.First, r.Last, len(r.Blocks))
		}
		for off, b := range r.Blocks {
			if pos := g.RPOPos(b); pos != r.First+off {
				return fmt.Errorf("region %d: block %s at RPO %d, expected %d", r.Index, b.Name, pos, r.First+off)
			}
			if seen[b.Index] != -1 {
				return fmt.Errorf("block %s in regions %d and %d", b.Name, seen[b.Index], r.Index)
			}
			seen[b.Index] = r.Index
			if p.BlockRegion[b.Index] != r.Index {
				return fmt.Errorf("block %s: BlockRegion says %d, member of %d", b.Name, p.BlockRegion[b.Index], r.Index)
			}
		}
	}
	for _, b := range g.Fn.Blocks {
		if g.Reachable(b) && seen[b.Index] == -1 {
			return fmt.Errorf("reachable block %s in no region", b.Name)
		}
		if !g.Reachable(b) && p.BlockRegion[b.Index] != -1 {
			return fmt.Errorf("unreachable block %s assigned region %d", b.Name, p.BlockRegion[b.Index])
		}
	}
	// Cut edges are exactly the inter-region edges and all forward.
	want := make(map[cfg.EdgeKey][2]int)
	for _, u := range g.RPO {
		for _, v := range u.Succs() {
			if !g.Reachable(v) {
				continue
			}
			ru, rv := seen[u.Index], seen[v.Index]
			if ru != rv {
				want[cfg.Edge(u, v)] = [2]int{ru, rv}
			}
		}
	}
	if len(want) != len(p.Cuts) {
		return fmt.Errorf("plan has %d cut edges, CFG has %d inter-region edges", len(p.Cuts), len(want))
	}
	for _, c := range p.Cuts {
		rs, ok := want[cfg.EdgeKey{From: c.From, To: c.To}]
		if !ok {
			return fmt.Errorf("cut %d->%d is not an inter-region edge", c.From, c.To)
		}
		if rs != [2]int{c.FromRegion, c.ToRegion} {
			return fmt.Errorf("cut %d->%d regions (%d,%d), want (%d,%d)", c.From, c.To, c.FromRegion, c.ToRegion, rs[0], rs[1])
		}
		if c.FromRegion >= c.ToRegion {
			return fmt.Errorf("cut %d->%d not forward: region %d -> %d", c.From, c.To, c.FromRegion, c.ToRegion)
		}
	}
	// No natural loop split across regions.
	li := g.Loops(0)
	for _, l := range li.Loops {
		r := -1
		for b := range l.Blocks {
			if !g.Reachable(b) {
				continue
			}
			if r == -1 {
				r = seen[b.Index]
			} else if seen[b.Index] != r {
				return fmt.Errorf("loop %s split across regions %d and %d", l.Header.Name, r, seen[b.Index])
			}
		}
	}
	return nil
}
