// Package report renders experiment output: ASCII heat maps of the
// register-file thermal state (the textual equivalent of the paper's
// Fig. 1 colour maps) and aligned text tables.
package report

import (
	"fmt"
	"strings"

	"thermflow/internal/floorplan"
	"thermflow/internal/thermal"
)

// heatRamp maps normalized temperature to glyphs, coldest to hottest.
const heatRamp = " .:-=+*#%@"

// Heatmap renders the thermal state as a W×H character grid with a
// legend. lo and hi set the colour scale; pass 0,0 to auto-scale to the
// state's own range.
func Heatmap(s thermal.State, fp *floorplan.Floorplan, lo, hi float64) string {
	if lo == 0 && hi == 0 {
		lo, hi = s.Min(), s.Max()
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	for y := 0; y < fp.Height; y++ {
		for x := 0; x < fp.Width; x++ {
			v := s[fp.CellIndex(x, y)]
			t := (v - lo) / span
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			idx := int(t * float64(len(heatRamp)-1))
			ch := heatRamp[idx]
			b.WriteByte(ch)
			b.WriteByte(ch) // double width for square-ish aspect
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "scale: '%c' = %.2f K ... '%c' = %.2f K\n",
		heatRamp[0], lo, heatRamp[len(heatRamp)-1], hi)
	return b.String()
}

// SideBySide joins multiple equally-tall text blocks horizontally with
// the given titles, for comparing heat maps like Fig. 1's (a)(b)(c).
func SideBySide(titles []string, blocks []string, gap int) string {
	if len(titles) != len(blocks) {
		panic("report: SideBySide titles/blocks mismatch")
	}
	split := make([][]string, len(blocks))
	height := 0
	width := make([]int, len(blocks))
	for i, blk := range blocks {
		split[i] = strings.Split(strings.TrimRight(blk, "\n"), "\n")
		if len(split[i]) > height {
			height = len(split[i])
		}
		for _, line := range split[i] {
			if len(line) > width[i] {
				width[i] = len(line)
			}
		}
		if len(titles[i]) > width[i] {
			width[i] = len(titles[i])
		}
	}
	pad := strings.Repeat(" ", gap)
	var b strings.Builder
	for i, title := range titles {
		if i > 0 {
			b.WriteString(pad)
		}
		fmt.Fprintf(&b, "%-*s", width[i], title)
	}
	b.WriteByte('\n')
	for row := 0; row < height; row++ {
		for i := range blocks {
			line := ""
			if row < len(split[i]) {
				line = split[i][row]
			}
			if i > 0 {
				b.WriteString(pad)
			}
			fmt.Fprintf(&b, "%-*s", width[i], line)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table accumulates rows and renders them column-aligned.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// Add appends a row; missing cells render empty, extra cells are kept.
func (t *Table) Add(cells ...string) { t.rows = append(t.rows, cells) }

// AddF appends a row of formatted values: strings pass through, floats
// render with %.3g, ints with %d.
func (t *Table) AddF(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		case bool:
			row[i] = fmt.Sprintf("%t", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns and a separator under
// the header.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
