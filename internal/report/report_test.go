package report

import (
	"strings"
	"testing"

	"thermflow/internal/floorplan"
	"thermflow/internal/thermal"
)

func TestHeatmapBasics(t *testing.T) {
	fp, _ := floorplan.New(16, 4, 4, 50e-6, floorplan.RowMajor)
	s := make(thermal.State, 16)
	for i := range s {
		s[i] = 320
	}
	s[5] = 340
	out := Heatmap(s, fp, 0, 0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 4 rows + legend.
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	for _, l := range lines[:4] {
		if len(l) != 8 { // double-width cells
			t.Errorf("row width = %d, want 8: %q", len(l), l)
		}
	}
	// Hot cell renders the hottest glyph.
	if !strings.Contains(lines[1], "@@") {
		t.Errorf("hot cell not rendered with '@': %q", lines[1])
	}
	if !strings.Contains(out, "scale:") {
		t.Error("legend missing")
	}
}

func TestHeatmapFixedScale(t *testing.T) {
	fp, _ := floorplan.New(4, 2, 2, 50e-6, floorplan.RowMajor)
	s := thermal.State{310, 320, 330, 340}
	out := Heatmap(s, fp, 300, 400)
	// With a 300..400 scale nothing reaches '@'.
	if strings.Contains(out[:strings.Index(out, "scale")], "@") {
		t.Error("values below scale max rendered as hottest glyph")
	}
	// Flat state with explicit scale must not divide by zero.
	flat := thermal.State{300, 300, 300, 300}
	_ = Heatmap(flat, fp, 0, 0)
}

func TestSideBySide(t *testing.T) {
	a := "aa\naa\n"
	b := "bbb\nbbb\n"
	out := SideBySide([]string{"A", "B"}, []string{a, b}, 3)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A") || !strings.Contains(lines[0], "B") {
		t.Errorf("title row wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "aa") || !strings.Contains(lines[1], "bbb") {
		t.Errorf("content row wrong: %q", lines[1])
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched titles/blocks did not panic")
		}
	}()
	SideBySide([]string{"A"}, []string{a, b}, 1)
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Add("alpha", "1")
	tb.AddF("beta", 2.5)
	tb.AddF("gamma", 42, true)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + sep + 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Error("headers missing")
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("separator missing")
	}
	if !strings.Contains(out, "2.5") || !strings.Contains(out, "42") || !strings.Contains(out, "true") {
		t.Error("formatted cells missing")
	}
	if tb.NumRows() != 3 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Alignment: all rows at least as wide as the header row's columns.
	for _, l := range lines[2:] {
		if len(l) < len("name") {
			t.Errorf("row too narrow: %q", l)
		}
	}
}

func TestTableFloat32AndDefault(t *testing.T) {
	tb := NewTable("x")
	tb.AddF(float32(1.5))
	tb.AddF([]int{1, 2})
	out := tb.String()
	if !strings.Contains(out, "1.5") || !strings.Contains(out, "[1 2]") {
		t.Errorf("formatting wrong:\n%s", out)
	}
}
