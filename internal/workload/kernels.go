// Package workload provides the executable programs the experiments
// run: hand-built signal-processing and integer kernels (the class of
// multimedia/embedded codes the paper's motivating references [1,4]
// target), plus a seeded random-program generator with register
// pressure and irregularity knobs.
package workload

import (
	"fmt"

	"thermflow/internal/ir"
	"thermflow/internal/sim"
)

// Kernel is an executable benchmark program.
type Kernel struct {
	// Name identifies the kernel in reports.
	Name string
	// Fn is the program.
	Fn *ir.Function
	// Setup returns the argument list and initial memory for a given
	// problem scale.
	Setup func(scale int) ([]int64, sim.Memory)
	// Expect returns the expected return value for a scale, enabling
	// end-to-end correctness checks through every transformation. It
	// may be nil when no closed form is practical.
	Expect func(scale int) int64
}

// lcg is a tiny deterministic generator for reproducible test data.
type lcg uint64

func (l *lcg) next() int64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return int64(uint64(*l)>>33) % 1000
}

// fillArray writes n deterministic words at base, 8 bytes apart.
func fillArray(mem sim.Memory, base int64, n int, seed uint64) {
	l := lcg(seed)
	for i := 0; i < n; i++ {
		mem[base+int64(i)*8] = l.next()
	}
}

func arrayVals(base int64, n int, seed uint64) []int64 {
	l := lcg(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = l.next()
	}
	_ = base
	return out
}

// All returns every kernel, freshly built (callers may mutate the
// functions).
func All() []Kernel {
	return []Kernel{
		DotProduct(),
		Saxpy(),
		FIR(),
		MatMul(),
		BubbleSort(),
		Histogram(),
		Checksum(),
		Fibonacci(),
		ScaledSum(),
		Transpose(),
		PrefixSum(),
	}
}

// ByName returns the named kernel.
func ByName(name string) (Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("workload: unknown kernel %q", name)
}

const (
	baseA = 0x10000
	baseB = 0x20000
	baseC = 0x30000
)

// DotProduct builds acc = Σ a[i]·b[i].
func DotProduct() Kernel {
	f := ir.NewFunc("dot")
	a := f.NewParam("a")
	bp := f.NewParam("b")
	n := f.NewParam("n")
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	f.TripCount["head"] = 64

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	eight := b.ConstNamed("eight", 8)
	acc := b.ConstNamed("acc", 0)
	b.Br(head)

	b.SetBlock(head)
	c := b.CmpLT(i, n)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	off := b.Mul(i, eight)
	aAddr := b.Add(a, off)
	av := b.Load(aAddr, 0)
	bAddr := b.Add(bp, off)
	bv := b.Load(bAddr, 0)
	p := b.Mul(av, bv)
	b.OpTo(ir.Add, acc, acc, p)
	b.OpTo(ir.Add, i, i, one)
	b.Br(head)

	b.SetBlock(exit)
	b.RetVal(acc)
	f.Renumber()

	return Kernel{
		Name: "dot",
		Fn:   f,
		Setup: func(scale int) ([]int64, sim.Memory) {
			mem := sim.Memory{}
			fillArray(mem, baseA, scale, 1)
			fillArray(mem, baseB, scale, 2)
			return []int64{baseA, baseB, int64(scale)}, mem
		},
		Expect: func(scale int) int64 {
			av := arrayVals(baseA, scale, 1)
			bv := arrayVals(baseB, scale, 2)
			var sum int64
			for i := 0; i < scale; i++ {
				sum += av[i] * bv[i]
			}
			return sum
		},
	}
}

// Saxpy builds y[i] = α·x[i] + y[i] and returns Σ y[i].
func Saxpy() Kernel {
	f := ir.NewFunc("saxpy")
	x := f.NewParam("x")
	y := f.NewParam("y")
	n := f.NewParam("n")
	alpha := f.NewParam("alpha")
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	f.TripCount["head"] = 64

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	eight := b.ConstNamed("eight", 8)
	sum := b.ConstNamed("sum", 0)
	b.Br(head)

	b.SetBlock(head)
	c := b.CmpLT(i, n)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	off := b.Mul(i, eight)
	xa := b.Add(x, off)
	xv := b.Load(xa, 0)
	ya := b.Add(y, off)
	yv := b.Load(ya, 0)
	ax := b.Mul(alpha, xv)
	nv := b.Add(ax, yv)
	b.Store(nv, ya, 0)
	b.OpTo(ir.Add, sum, sum, nv)
	b.OpTo(ir.Add, i, i, one)
	b.Br(head)

	b.SetBlock(exit)
	b.RetVal(sum)
	f.Renumber()

	return Kernel{
		Name: "saxpy",
		Fn:   f,
		Setup: func(scale int) ([]int64, sim.Memory) {
			mem := sim.Memory{}
			fillArray(mem, baseA, scale, 3)
			fillArray(mem, baseB, scale, 4)
			return []int64{baseA, baseB, int64(scale), 3}, mem
		},
		Expect: func(scale int) int64 {
			xv := arrayVals(baseA, scale, 3)
			yv := arrayVals(baseB, scale, 4)
			var sum int64
			for i := 0; i < scale; i++ {
				sum += 3*xv[i] + yv[i]
			}
			return sum
		},
	}
}

// firTaps is the fixed tap count of the FIR kernel.
const firTaps = 8

// FIR builds an 8-tap finite impulse response filter over x, summing
// the outputs.
func FIR() Kernel {
	f := ir.NewFunc("fir")
	x := f.NewParam("x")
	h := f.NewParam("h")
	n := f.NewParam("n")
	entry := f.NewBlock("entry")
	ohead := f.NewBlock("ohead")
	obody := f.NewBlock("obody")
	ihead := f.NewBlock("ihead")
	ibody := f.NewBlock("ibody")
	olatch := f.NewBlock("olatch")
	exit := f.NewBlock("exit")
	f.TripCount["ohead"] = 64
	f.TripCount["ihead"] = firTaps

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	eight := b.ConstNamed("eight", 8)
	taps := b.ConstNamed("taps", firTaps)
	sum := b.ConstNamed("sum", 0)
	b.Br(ohead)

	b.SetBlock(ohead)
	c0 := b.CmpLT(i, n)
	b.CondBr(c0, obody, exit)

	b.SetBlock(obody)
	acc := b.ConstNamed("acc", 0)
	k := b.ConstNamed("k", 0)
	b.Br(ihead)

	b.SetBlock(ihead)
	c1 := b.CmpLT(k, taps)
	b.CondBr(c1, ibody, olatch)

	b.SetBlock(ibody)
	ik := b.Add(i, k)
	xoff := b.Mul(ik, eight)
	xa := b.Add(x, xoff)
	xv := b.Load(xa, 0)
	hoff := b.Mul(k, eight)
	ha := b.Add(h, hoff)
	hv := b.Load(ha, 0)
	p := b.Mul(xv, hv)
	b.OpTo(ir.Add, acc, acc, p)
	b.OpTo(ir.Add, k, k, one)
	b.Br(ihead)

	b.SetBlock(olatch)
	b.OpTo(ir.Add, sum, sum, acc)
	b.OpTo(ir.Add, i, i, one)
	b.Br(ohead)

	b.SetBlock(exit)
	b.RetVal(sum)
	f.Renumber()

	return Kernel{
		Name: "fir",
		Fn:   f,
		Setup: func(scale int) ([]int64, sim.Memory) {
			mem := sim.Memory{}
			fillArray(mem, baseA, scale+firTaps, 5)
			fillArray(mem, baseB, firTaps, 6)
			return []int64{baseA, baseB, int64(scale)}, mem
		},
		Expect: func(scale int) int64 {
			xv := arrayVals(baseA, scale+firTaps, 5)
			hv := arrayVals(baseB, firTaps, 6)
			var sum int64
			for i := 0; i < scale; i++ {
				var acc int64
				for k := 0; k < firTaps; k++ {
					acc += xv[i+k] * hv[k]
				}
				sum += acc
			}
			return sum
		},
	}
}

// MatMul builds C = A×B over n×n matrices and returns Σ C[i][j].
func MatMul() Kernel {
	f := ir.NewFunc("matmul")
	a := f.NewParam("a")
	bm := f.NewParam("b")
	cm := f.NewParam("c")
	n := f.NewParam("n")
	entry := f.NewBlock("entry")
	ihead := f.NewBlock("ihead")
	ibody := f.NewBlock("ibody")
	jhead := f.NewBlock("jhead")
	jbody := f.NewBlock("jbody")
	khead := f.NewBlock("khead")
	kbody := f.NewBlock("kbody")
	jlatch := f.NewBlock("jlatch")
	ilatch := f.NewBlock("ilatch")
	exit := f.NewBlock("exit")
	f.TripCount["ihead"] = 8
	f.TripCount["jhead"] = 8
	f.TripCount["khead"] = 8

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	eight := b.ConstNamed("eight", 8)
	total := b.ConstNamed("total", 0)
	b.Br(ihead)

	b.SetBlock(ihead)
	ci := b.CmpLT(i, n)
	b.CondBr(ci, ibody, exit)

	b.SetBlock(ibody)
	j := b.ConstNamed("j", 0)
	b.Br(jhead)

	b.SetBlock(jhead)
	cj := b.CmpLT(j, n)
	b.CondBr(cj, jbody, ilatch)

	b.SetBlock(jbody)
	k := b.ConstNamed("k", 0)
	acc := b.ConstNamed("acc", 0)
	b.Br(khead)

	b.SetBlock(khead)
	ck := b.CmpLT(k, n)
	b.CondBr(ck, kbody, jlatch)

	b.SetBlock(kbody)
	in1 := b.Mul(i, n)
	ik := b.Add(in1, k)
	aoff := b.Mul(ik, eight)
	aAddr := b.Add(a, aoff)
	av := b.Load(aAddr, 0)
	kn := b.Mul(k, n)
	kj := b.Add(kn, j)
	boff := b.Mul(kj, eight)
	bAddr := b.Add(bm, boff)
	bv := b.Load(bAddr, 0)
	p := b.Mul(av, bv)
	b.OpTo(ir.Add, acc, acc, p)
	b.OpTo(ir.Add, k, k, one)
	b.Br(khead)

	b.SetBlock(jlatch)
	in2 := b.Mul(i, n)
	ij := b.Add(in2, j)
	coff := b.Mul(ij, eight)
	cAddr := b.Add(cm, coff)
	b.Store(acc, cAddr, 0)
	b.OpTo(ir.Add, total, total, acc)
	b.OpTo(ir.Add, j, j, one)
	b.Br(jhead)

	b.SetBlock(ilatch)
	b.OpTo(ir.Add, i, i, one)
	b.Br(ihead)

	b.SetBlock(exit)
	b.RetVal(total)
	f.Renumber()

	return Kernel{
		Name: "matmul",
		Fn:   f,
		Setup: func(scale int) ([]int64, sim.Memory) {
			mem := sim.Memory{}
			fillArray(mem, baseA, scale*scale, 7)
			fillArray(mem, baseB, scale*scale, 8)
			return []int64{baseA, baseB, baseC, int64(scale)}, mem
		},
		Expect: func(scale int) int64 {
			av := arrayVals(baseA, scale*scale, 7)
			bv := arrayVals(baseB, scale*scale, 8)
			var total int64
			for i := 0; i < scale; i++ {
				for j := 0; j < scale; j++ {
					var acc int64
					for k := 0; k < scale; k++ {
						acc += av[i*scale+k] * bv[k*scale+j]
					}
					total += acc
				}
			}
			return total
		},
	}
}

// BubbleSort sorts a[0..n) ascending in place and returns a[n-1] (the
// maximum) xor a[0] (the minimum).
func BubbleSort() Kernel {
	f := ir.NewFunc("bubblesort")
	a := f.NewParam("a")
	n := f.NewParam("n")
	entry := f.NewBlock("entry")
	ohead := f.NewBlock("ohead")
	obody := f.NewBlock("obody")
	ihead := f.NewBlock("ihead")
	ibody := f.NewBlock("ibody")
	swap := f.NewBlock("swap")
	ilatch := f.NewBlock("ilatch")
	olatch := f.NewBlock("olatch")
	exit := f.NewBlock("exit")
	f.TripCount["ohead"] = 16
	f.TripCount["ihead"] = 16

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	eight := b.ConstNamed("eight", 8)
	b.Br(ohead)

	b.SetBlock(ohead)
	nm1 := b.Sub(n, one)
	c0 := b.CmpLT(i, nm1)
	b.CondBr(c0, obody, exit)

	b.SetBlock(obody)
	j := b.ConstNamed("j", 0)
	b.Br(ihead)

	b.SetBlock(ihead)
	lim := b.Sub(n, one)
	lim2 := b.Sub(lim, i)
	c1 := b.CmpLT(j, lim2)
	b.CondBr(c1, ibody, olatch)

	b.SetBlock(ibody)
	joff := b.Mul(j, eight)
	addr0 := b.Add(a, joff)
	v0 := b.Load(addr0, 0)
	v1 := b.Load(addr0, 8)
	cgt := b.CmpGT(v0, v1)
	b.CondBr(cgt, swap, ilatch)

	b.SetBlock(swap)
	b.Store(v1, addr0, 0)
	b.Store(v0, addr0, 8)
	b.Br(ilatch)

	b.SetBlock(ilatch)
	b.OpTo(ir.Add, j, j, one)
	b.Br(ihead)

	b.SetBlock(olatch)
	b.OpTo(ir.Add, i, i, one)
	b.Br(ohead)

	b.SetBlock(exit)
	lastOff := b.Sub(n, one)
	lastOff8 := b.Mul(lastOff, eight)
	lastAddr := b.Add(a, lastOff8)
	maxV := b.Load(lastAddr, 0)
	minV := b.Load(a, 0)
	out := b.Xor(maxV, minV)
	b.RetVal(out)
	f.Renumber()

	return Kernel{
		Name: "bubblesort",
		Fn:   f,
		Setup: func(scale int) ([]int64, sim.Memory) {
			mem := sim.Memory{}
			fillArray(mem, baseA, scale, 9)
			return []int64{baseA, int64(scale)}, mem
		},
		Expect: func(scale int) int64 {
			vals := arrayVals(baseA, scale, 9)
			min, max := vals[0], vals[0]
			for _, v := range vals {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			return max ^ min
		},
	}
}

// histBuckets is the fixed bucket count of the histogram kernel.
const histBuckets = 16

// Histogram counts a[i] mod 16 into hist[] and returns Σ bucket²
// (a simple integrity hash of the distribution).
func Histogram() Kernel {
	f := ir.NewFunc("histogram")
	a := f.NewParam("a")
	hist := f.NewParam("hist")
	n := f.NewParam("n")
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	mid := f.NewBlock("mid")
	sumHead := f.NewBlock("sumhead")
	sumBody := f.NewBlock("sumbody")
	exit := f.NewBlock("exit")
	f.TripCount["head"] = 64
	f.TripCount["sumhead"] = histBuckets

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	eight := b.ConstNamed("eight", 8)
	buckets := b.ConstNamed("buckets", histBuckets)
	b.Br(head)

	b.SetBlock(head)
	c := b.CmpLT(i, n)
	b.CondBr(c, body, mid)

	b.SetBlock(body)
	off := b.Mul(i, eight)
	addr := b.Add(a, off)
	v := b.Load(addr, 0)
	bucket := b.Rem(v, buckets)
	boff := b.Mul(bucket, eight)
	baddr := b.Add(hist, boff)
	cur := b.Load(baddr, 0)
	nv := b.Add(cur, one)
	b.Store(nv, baddr, 0)
	b.OpTo(ir.Add, i, i, one)
	b.Br(head)

	b.SetBlock(mid)
	k := b.ConstNamed("k", 0)
	sum := b.ConstNamed("sum", 0)
	b.Br(sumHead)

	b.SetBlock(sumHead)
	ck := b.CmpLT(k, buckets)
	b.CondBr(ck, sumBody, exit)

	b.SetBlock(sumBody)
	koff := b.Mul(k, eight)
	kaddr := b.Add(hist, koff)
	kv := b.Load(kaddr, 0)
	sq := b.Mul(kv, kv)
	b.OpTo(ir.Add, sum, sum, sq)
	b.OpTo(ir.Add, k, k, one)
	b.Br(sumHead)

	b.SetBlock(exit)
	b.RetVal(sum)
	f.Renumber()

	return Kernel{
		Name: "histogram",
		Fn:   f,
		Setup: func(scale int) ([]int64, sim.Memory) {
			mem := sim.Memory{}
			fillArray(mem, baseA, scale, 10)
			return []int64{baseA, baseB, int64(scale)}, mem
		},
		Expect: func(scale int) int64 {
			vals := arrayVals(baseA, scale, 10)
			var buckets [histBuckets]int64
			for _, v := range vals {
				buckets[v%histBuckets]++
			}
			var sum int64
			for _, c := range buckets {
				sum += c * c
			}
			return sum
		},
	}
}

// Checksum builds a rotate-xor-multiply hash over a[0..n) — a
// shift-heavy integer kernel.
func Checksum() Kernel {
	f := ir.NewFunc("checksum")
	a := f.NewParam("a")
	n := f.NewParam("n")
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	f.TripCount["head"] = 64

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	eight := b.ConstNamed("eight", 8)
	five := b.ConstNamed("five", 5)
	c59 := b.ConstNamed("c59", 59)
	mulc := b.ConstNamed("mulc", 31)
	h := b.ConstNamed("h", 1469598103)
	b.Br(head)

	b.SetBlock(head)
	c := b.CmpLT(i, n)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	off := b.Mul(i, eight)
	addr := b.Add(a, off)
	v := b.Load(addr, 0)
	x := b.Xor(h, v)
	hi := b.Shl(x, five)
	lo := b.Shr(x, c59)
	rot := b.Or(hi, lo)
	b.OpTo(ir.Mul, h, rot, mulc)
	b.OpTo(ir.Add, i, i, one)
	b.Br(head)

	b.SetBlock(exit)
	b.RetVal(h)
	f.Renumber()

	return Kernel{
		Name: "checksum",
		Fn:   f,
		Setup: func(scale int) ([]int64, sim.Memory) {
			mem := sim.Memory{}
			fillArray(mem, baseA, scale, 11)
			return []int64{baseA, int64(scale)}, mem
		},
		Expect: func(scale int) int64 {
			vals := arrayVals(baseA, scale, 11)
			h := int64(1469598103)
			for _, v := range vals {
				x := h ^ v
				// The IR's shr is an arithmetic shift; mirror it.
				rot := x<<5 | x>>59
				h = rot * 31
			}
			return h
		},
	}
}

// ScaledSum computes Σ a[i]·s where the scale factor s is re-loaded
// from memory every iteration — the memory-resident-variable pattern
// register promotion (§4) eliminates.
func ScaledSum() Kernel {
	f := ir.NewFunc("scaledsum")
	a := f.NewParam("a")
	cfgp := f.NewParam("cfg")
	n := f.NewParam("n")
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	f.TripCount["head"] = 64

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	eight := b.ConstNamed("eight", 8)
	sum := b.ConstNamed("sum", 0)
	b.Br(head)

	b.SetBlock(head)
	c := b.CmpLT(i, n)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	s := b.Load(cfgp, 0) // loop-invariant, promotable
	off := b.Mul(i, eight)
	addr := b.Add(a, off)
	v := b.Load(addr, 0)
	sv := b.Mul(v, s)
	b.OpTo(ir.Add, sum, sum, sv)
	b.OpTo(ir.Add, i, i, one)
	b.Br(head)

	b.SetBlock(exit)
	b.RetVal(sum)
	f.Renumber()

	return Kernel{
		Name: "scaledsum",
		Fn:   f,
		Setup: func(scale int) ([]int64, sim.Memory) {
			mem := sim.Memory{}
			fillArray(mem, baseA, scale, 12)
			mem[baseB] = 5
			return []int64{baseA, baseB, int64(scale)}, mem
		},
		Expect: func(scale int) int64 {
			vals := arrayVals(baseA, scale, 12)
			var sum int64
			for _, v := range vals {
				sum += v * 5
			}
			return sum
		},
	}
}

// Transpose writes B = Aᵀ for an n×n matrix and returns the trace
// (sum of the diagonal, invariant under transposition — a built-in
// correctness check).
func Transpose() Kernel {
	f := ir.NewFunc("transpose")
	a := f.NewParam("a")
	bb := f.NewParam("b")
	n := f.NewParam("n")
	entry := f.NewBlock("entry")
	ihead := f.NewBlock("ihead")
	ibody := f.NewBlock("ibody")
	jhead := f.NewBlock("jhead")
	jbody := f.NewBlock("jbody")
	ilatch := f.NewBlock("ilatch")
	exit := f.NewBlock("exit")
	f.TripCount["ihead"] = 8
	f.TripCount["jhead"] = 8

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	eight := b.ConstNamed("eight", 8)
	trace := b.ConstNamed("trace", 0)
	b.Br(ihead)

	b.SetBlock(ihead)
	ci := b.CmpLT(i, n)
	b.CondBr(ci, ibody, exit)

	b.SetBlock(ibody)
	j := b.ConstNamed("j", 0)
	// trace += a[i][i]
	in1 := b.Mul(i, n)
	ii := b.Add(in1, i)
	dOff := b.Mul(ii, eight)
	dAddr := b.Add(a, dOff)
	dv := b.Load(dAddr, 0)
	b.OpTo(ir.Add, trace, trace, dv)
	b.Br(jhead)

	b.SetBlock(jhead)
	cj := b.CmpLT(j, n)
	b.CondBr(cj, jbody, ilatch)

	b.SetBlock(jbody)
	in2 := b.Mul(i, n)
	ij := b.Add(in2, j)
	sOff := b.Mul(ij, eight)
	sAddr := b.Add(a, sOff)
	v := b.Load(sAddr, 0)
	jn := b.Mul(j, n)
	ji := b.Add(jn, i)
	tOff := b.Mul(ji, eight)
	tAddr := b.Add(bb, tOff)
	b.Store(v, tAddr, 0)
	b.OpTo(ir.Add, j, j, one)
	b.Br(jhead)

	b.SetBlock(ilatch)
	b.OpTo(ir.Add, i, i, one)
	b.Br(ihead)

	b.SetBlock(exit)
	b.RetVal(trace)
	f.Renumber()

	return Kernel{
		Name: "transpose",
		Fn:   f,
		Setup: func(scale int) ([]int64, sim.Memory) {
			mem := sim.Memory{}
			fillArray(mem, baseA, scale*scale, 13)
			return []int64{baseA, baseB, int64(scale)}, mem
		},
		Expect: func(scale int) int64 {
			vals := arrayVals(baseA, scale*scale, 13)
			var trace int64
			for i := 0; i < scale; i++ {
				trace += vals[i*scale+i]
			}
			return trace
		},
	}
}

// PrefixSum computes the in-place inclusive prefix sum of a[0..n) and
// returns the final element (the total).
func PrefixSum() Kernel {
	f := ir.NewFunc("prefixsum")
	a := f.NewParam("a")
	n := f.NewParam("n")
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	f.TripCount["head"] = 64

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	eight := b.ConstNamed("eight", 8)
	run := b.ConstNamed("run", 0)
	b.Br(head)

	b.SetBlock(head)
	c := b.CmpLT(i, n)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	off := b.Mul(i, eight)
	addr := b.Add(a, off)
	v := b.Load(addr, 0)
	b.OpTo(ir.Add, run, run, v)
	b.Store(run, addr, 0)
	b.OpTo(ir.Add, i, i, one)
	b.Br(head)

	b.SetBlock(exit)
	b.RetVal(run)
	f.Renumber()

	return Kernel{
		Name: "prefixsum",
		Fn:   f,
		Setup: func(scale int) ([]int64, sim.Memory) {
			mem := sim.Memory{}
			fillArray(mem, baseA, scale, 14)
			return []int64{baseA, int64(scale)}, mem
		},
		Expect: func(scale int) int64 {
			vals := arrayVals(baseA, scale, 14)
			var total int64
			for _, v := range vals {
				total += v
			}
			return total
		},
	}
}

// Fibonacci computes fib(n) iteratively — a tiny register-only kernel
// with no memory traffic.
func Fibonacci() Kernel {
	f := ir.NewFunc("fib")
	n := f.NewParam("n")
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	f.TripCount["head"] = 32

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	prev := b.ConstNamed("prev", 0)
	cur := b.ConstNamed("cur", 1)
	b.Br(head)

	b.SetBlock(head)
	c := b.CmpLT(i, n)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	next := b.Add(prev, cur)
	b.MovTo(prev, cur)
	b.MovTo(cur, next)
	b.OpTo(ir.Add, i, i, one)
	b.Br(head)

	b.SetBlock(exit)
	b.RetVal(prev)
	f.Renumber()

	return Kernel{
		Name: "fib",
		Fn:   f,
		Setup: func(scale int) ([]int64, sim.Memory) {
			return []int64{int64(scale)}, sim.Memory{}
		},
		Expect: func(scale int) int64 {
			a, b := int64(0), int64(1)
			for i := 0; i < scale; i++ {
				a, b = b, a+b
			}
			return a
		},
	}
}
