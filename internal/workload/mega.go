package workload

import (
	"fmt"
	"math/rand"

	"thermflow/internal/ir"
)

// MegaConfig parameterizes the mega-module generator: one function
// large enough that partitioning it is worthwhile, shaped so the
// region DAG is wide. A dispatch chain fans out into independent arms
// of counted loop nests (each arm mutates the shared working set in
// place, join-safely), and every arm rejoins at a single collect
// block. The reverse postorder lays the chain, then each arm, then the
// collect block out contiguously, so the region partitioner can put
// every arm in its own region — giving an exact-mode solve a DAG of
// width Arms to run in parallel.
type MegaConfig struct {
	// Seed drives all random choices; equal seeds yield identical
	// programs.
	Seed int64
	// Arms is the number of independent dispatch targets (0 = 8).
	Arms int
	// Depth is the loop nesting per arm (0 = 2).
	Depth int
	// OpsPerBlock is the arithmetic ops per loop-body block (0 = 8).
	OpsPerBlock int
	// Pressure is the shared working-set size (0 = 16).
	Pressure int
	// TripCount is the trip hint of every generated loop (0 = 16).
	TripCount int
}

func (c MegaConfig) withDefaults() MegaConfig {
	if c.Arms <= 0 {
		c.Arms = 8
	}
	if c.Depth <= 0 {
		c.Depth = 2
	}
	if c.OpsPerBlock <= 0 {
		c.OpsPerBlock = 8
	}
	if c.Pressure <= 0 {
		c.Pressure = 16
	}
	if c.TripCount <= 0 {
		c.TripCount = 16
	}
	return c
}

// GenerateMega builds the mega-module. The result is verified and
// renumbered; like Generate it returns a fold of the working set so
// transformations stay observable.
func GenerateMega(c MegaConfig) *ir.Function {
	c = c.withDefaults()
	g := &megaGen{
		cfg: c,
		rng: rand.New(rand.NewSource(c.Seed)),
		fn:  ir.NewFunc(fmt.Sprintf("mega%d", c.Seed)),
	}
	entry := g.fn.NewBlock("entry")
	g.b = ir.NewBuilder(g.fn, entry)
	for i := 0; i < c.Pressure; i++ {
		g.pool = append(g.pool, g.b.ConstNamed(fmt.Sprintf("p%d", i), int64(i*13+1)))
	}
	collect := g.fn.NewBlock("collect")

	// Dispatch chain: d_j either enters arm j or falls through to
	// d_{j+1}; the last dispatch block enters the last arm
	// unconditionally so every path reaches an arm.
	cur := entry
	for j := 0; j < c.Arms; j++ {
		head := g.fn.NewBlock(fmt.Sprintf("arm%d", j))
		g.b.SetBlock(cur)
		if j == c.Arms-1 {
			g.b.Br(head)
		} else {
			next := g.fn.NewBlock(fmt.Sprintf("d%d", j+1))
			cond := g.b.CmpLT(g.pool[j%len(g.pool)], g.pool[(j+5)%len(g.pool)])
			g.b.CondBr(cond, head, next)
			cur = next
		}
		g.arm(head, collect)
	}

	g.b.SetBlock(collect)
	acc := g.pool[0]
	for _, v := range g.pool[1:] {
		acc = g.b.Xor(acc, v)
	}
	g.b.RetVal(acc)
	g.fn.Renumber()
	if err := ir.Verify(g.fn); err != nil {
		// A generator bug, not an input error: fail loudly.
		panic(fmt.Sprintf("workload: generated invalid mega-module: %v", err))
	}
	return g.fn
}

type megaGen struct {
	cfg  MegaConfig
	rng  *rand.Rand
	fn   *ir.Function
	b    *ir.Builder
	pool []*ir.Value
	uniq int
}

// arm emits one independent arm: a loop nest of the configured depth
// whose bodies mutate pool slots in place (join-safe), ending at the
// shared collect block.
func (g *megaGen) arm(head, collect *ir.Block) {
	g.b.SetBlock(head)
	g.mutate()
	exit := g.nest(g.cfg.Depth)
	g.b.SetBlock(exit)
	g.mutate()
	g.b.Br(collect)
}

// nest emits a counted loop of the given remaining depth into the
// current block and returns the block control flow continues in.
func (g *megaGen) nest(depth int) *ir.Block {
	g.uniq++
	id := g.uniq
	loopHead := g.fn.NewBlock(fmt.Sprintf("head%d", id))
	body := g.fn.NewBlock(fmt.Sprintf("body%d", id))
	next := g.fn.NewBlock(fmt.Sprintf("next%d", id))
	g.fn.TripCount[loopHead.Name] = g.cfg.TripCount

	i := g.b.ConstNamed(fmt.Sprintf("i%d", id), 0)
	limit := g.b.ConstNamed(fmt.Sprintf("n%d", id), int64(g.cfg.TripCount))
	one := g.b.ConstNamed(fmt.Sprintf("one%d", id), 1)
	g.b.Br(loopHead)

	g.b.SetBlock(loopHead)
	c := g.b.CmpLT(i, limit)
	g.b.CondBr(c, body, next)

	g.b.SetBlock(body)
	g.mutate()
	last := g.b.Block()
	if depth > 1 {
		last = g.nest(depth - 1)
		g.b.SetBlock(last)
		g.mutate()
	}
	g.b.OpTo(ir.Add, i, i, one)
	g.b.Br(loopHead)

	g.b.SetBlock(next)
	return next
}

// mutate emits OpsPerBlock in-place pool mutations into the current
// block.
func (g *megaGen) mutate() {
	for k := 0; k < g.cfg.OpsPerBlock; k++ {
		slot := g.rng.Intn(len(g.pool))
		a := g.pool[g.rng.Intn(len(g.pool))]
		op := genOps[g.rng.Intn(len(genOps))]
		g.b.OpTo(op, g.pool[slot], g.pool[slot], a)
	}
}
