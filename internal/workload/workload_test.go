package workload

import (
	"testing"

	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
	"thermflow/internal/sim"
)

func TestAllKernelsVerify(t *testing.T) {
	for _, k := range All() {
		if err := ir.Verify(k.Fn); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
		if k.Fn.Name == "" || k.Name == "" {
			t.Errorf("kernel unnamed: %+v", k.Name)
		}
	}
}

func TestAllKernelsExecuteCorrectly(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			for _, scale := range []int{1, 4, 8} {
				args, mem := k.Setup(scale)
				res, err := sim.Run(k.Fn, sim.Options{Args: args, Mem: mem})
				if err != nil {
					t.Fatalf("scale %d: %v", scale, err)
				}
				if k.Expect != nil {
					if want := k.Expect(scale); res.Ret != want {
						t.Errorf("scale %d: got %d, want %d", scale, res.Ret, want)
					}
				}
			}
		})
	}
}

func TestKernelsSurviveAllocationAndTracing(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			a, err := regalloc.Allocate(k.Fn, regalloc.Config{NumRegs: 64, Policy: regalloc.FirstFree})
			if err != nil {
				t.Fatalf("Allocate: %v", err)
			}
			args, mem := k.Setup(4)
			res, err := sim.Run(a.Fn, sim.Options{Args: args, Mem: mem, Alloc: a})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if k.Expect != nil && res.Ret != k.Expect(4) {
				t.Errorf("allocated run: got %d, want %d", res.Ret, k.Expect(4))
			}
			if res.Trace.TotalAccesses() == 0 {
				t.Error("no accesses traced")
			}
		})
	}
}

func TestKernelsUnderPressure(t *testing.T) {
	// Kernels must still run correctly when squeezed into 8 registers
	// (spilling will occur).
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			a, err := regalloc.Allocate(k.Fn, regalloc.Config{NumRegs: 8, Policy: regalloc.FirstFree})
			if err != nil {
				t.Fatalf("Allocate/8: %v", err)
			}
			args, mem := k.Setup(4)
			res, err := sim.Run(a.Fn, sim.Options{Args: args, Mem: mem})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if k.Expect != nil && res.Ret != k.Expect(4) {
				t.Errorf("got %d, want %d (spilled=%v)", res.Ret, k.Expect(4), a.Spilled)
			}
		})
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("matmul")
	if err != nil || k.Name != "matmul" {
		t.Errorf("ByName(matmul) = %v, %v", k.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	f1 := Generate(GenConfig{Seed: 11})
	f2 := Generate(GenConfig{Seed: 11})
	if ir.Print(f1) != ir.Print(f2) {
		t.Error("same seed generated different programs")
	}
	f3 := Generate(GenConfig{Seed: 12})
	if ir.Print(f1) == ir.Print(f3) {
		t.Error("different seeds generated identical programs")
	}
}

func TestGenerateTerminatesAndVerifies(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := Generate(GenConfig{Seed: seed, Irregularity: float64(seed%5) / 4})
		if err := ir.Verify(f); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := sim.Run(f, sim.Options{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatalf("seed %d did not terminate cleanly: %v", seed, err)
		}
		if !res.HasRet {
			t.Errorf("seed %d returned nothing", seed)
		}
	}
}

func TestGeneratePressureKnob(t *testing.T) {
	low := Generate(GenConfig{Seed: 5, Pressure: 4})
	high := Generate(GenConfig{Seed: 5, Pressure: 24})
	if high.NumValues() <= low.NumValues() {
		t.Error("pressure knob did not increase value count")
	}
	// High-pressure program needs more registers: allocate with 32 and
	// check occupancy ordering.
	aLow, err := regalloc.Allocate(low, regalloc.Config{NumRegs: 32, Policy: regalloc.FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	aHigh, err := regalloc.Allocate(high, regalloc.Config{NumRegs: 32, Policy: regalloc.FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	if len(aHigh.UsedRegs()) <= len(aLow.UsedRegs()) {
		t.Errorf("used registers: high=%d low=%d", len(aHigh.UsedRegs()), len(aLow.UsedRegs()))
	}
}

func TestGenerateIrregularityAddsBranches(t *testing.T) {
	countDiamonds := func(f *ir.Function) int {
		n := 0
		for _, b := range f.Blocks {
			if len(b.Succs()) == 2 {
				n++
			}
		}
		return n
	}
	regular := 0
	irregular := 0
	for seed := int64(0); seed < 10; seed++ {
		regular += countDiamonds(Generate(GenConfig{Seed: seed, Irregularity: 0}))
		irregular += countDiamonds(Generate(GenConfig{Seed: seed, Irregularity: 1}))
	}
	if irregular <= regular {
		t.Errorf("irregularity did not add branches: %d vs %d", irregular, regular)
	}
}

func TestGeneratedProgramsSurviveTransforms(t *testing.T) {
	// Round-trip through allocation with spilling; results must match.
	for seed := int64(0); seed < 8; seed++ {
		f := Generate(GenConfig{Seed: seed, Pressure: 12, Irregularity: 0.5})
		base, err := sim.Run(f, sim.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, err := regalloc.Allocate(f, regalloc.Config{NumRegs: 8, Policy: regalloc.Random, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d allocate: %v", seed, err)
		}
		got, err := sim.Run(a.Fn, sim.Options{})
		if err != nil {
			t.Fatalf("seed %d run: %v", seed, err)
		}
		if got.Ret != base.Ret {
			t.Errorf("seed %d: allocation changed result %d -> %d", seed, base.Ret, got.Ret)
		}
	}
}
