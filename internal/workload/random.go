package workload

import (
	"fmt"
	"math/rand"

	"thermflow/internal/ir"
)

// GenConfig parameterizes the random program generator. Every
// generated program is structured (loops and diamonds nest properly),
// terminates (all loops are counted), and verifies.
type GenConfig struct {
	// Seed drives all random choices; equal seeds yield identical
	// programs.
	Seed int64
	// Pressure is the number of long-lived values threaded through the
	// whole program — the register pressure floor. (0 = 8)
	Pressure int
	// Segments is the number of top-level regions (0 = 4).
	Segments int
	// LoopDepth is the maximum loop nesting (0 = 2).
	LoopDepth int
	// OpsPerBlock is the approximate arithmetic ops per block (0 = 6).
	OpsPerBlock int
	// Irregularity in [0,1] controls how often control flow forks into
	// data-dependent diamonds and how erratically the value pool is
	// touched. 0 produces regular loop nests over a stable working
	// set; 1 produces branchy code with rotating working sets — the
	// "very irregular data usage" the paper associates with analyses
	// that fail to converge.
	Irregularity float64
	// TripCount is the loop trip hint recorded for generated loops
	// (0 = 12).
	TripCount int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Pressure <= 0 {
		c.Pressure = 8
	}
	if c.Segments <= 0 {
		c.Segments = 4
	}
	if c.LoopDepth <= 0 {
		c.LoopDepth = 2
	}
	if c.OpsPerBlock <= 0 {
		c.OpsPerBlock = 6
	}
	if c.TripCount <= 0 {
		c.TripCount = 12
	}
	if c.Irregularity < 0 {
		c.Irregularity = 0
	}
	if c.Irregularity > 1 {
		c.Irregularity = 1
	}
	return c
}

// generator carries the in-progress state.
type generator struct {
	cfg  GenConfig
	rng  *rand.Rand
	fn   *ir.Function
	b    *ir.Builder
	pool []*ir.Value // long-lived working set
	uniq int
}

// Generate builds a random program according to cfg. The result is
// verified and renumbered; it takes no parameters and returns a value
// folded from the working set, so any transformation that changes its
// semantics is detectable by executing it.
func Generate(cfgGen GenConfig) *ir.Function {
	cfgGen = cfgGen.withDefaults()
	g := &generator{
		cfg: cfgGen,
		rng: rand.New(rand.NewSource(cfgGen.Seed)),
		fn:  ir.NewFunc(fmt.Sprintf("rand%d", cfgGen.Seed)),
	}
	entry := g.fn.NewBlock("entry")
	g.b = ir.NewBuilder(g.fn, entry)
	// Working set: Pressure values initialized to distinct constants.
	for i := 0; i < g.cfg.Pressure; i++ {
		v := g.b.ConstNamed(fmt.Sprintf("p%d", i), int64(i*7+1))
		g.pool = append(g.pool, v)
	}
	for s := 0; s < g.cfg.Segments; s++ {
		g.segment(g.cfg.LoopDepth)
	}
	// Fold the pool into the return value so every pool value stays
	// live to the end.
	acc := g.pool[0]
	for _, v := range g.pool[1:] {
		acc = g.b.Xor(acc, v)
	}
	g.b.RetVal(acc)
	g.fn.Renumber()
	if err := ir.Verify(g.fn); err != nil {
		// A generator bug, not an input error: fail loudly.
		panic(fmt.Sprintf("workload: generated invalid program: %v", err))
	}
	return g.fn
}

// segment emits one region: a loop, a diamond or a straight block,
// biased by the irregularity knob.
func (g *generator) segment(depthBudget int) {
	r := g.rng.Float64()
	switch {
	case depthBudget > 0 && r < 0.55:
		g.loop(depthBudget)
	case r < 0.55+0.35*g.cfg.Irregularity:
		g.diamond(depthBudget)
	default:
		g.straight()
	}
}

// straight emits arithmetic on the working set into the current block.
func (g *generator) straight() {
	n := 1 + g.rng.Intn(g.cfg.OpsPerBlock)
	for i := 0; i < n; i++ {
		g.emitOp()
	}
}

// ops the generator draws from (all defined for any operands).
var genOps = []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor}

// emitOp defines a new value from two pool values and, with probability
// rising with irregularity, rotates it into the pool (changing which
// values are hot).
func (g *generator) emitOp() {
	a := g.pool[g.rng.Intn(len(g.pool))]
	b := g.pool[g.rng.Intn(len(g.pool))]
	op := genOps[g.rng.Intn(len(genOps))]
	g.uniq++
	v := g.fn.NewValue(fmt.Sprintf("t%d", g.uniq))
	g.b.OpTo(op, v, a, b)
	// Regular programs keep accumulating into the same slots; irregular
	// ones rotate the working set.
	rotateP := 0.2 + 0.6*g.cfg.Irregularity
	if g.rng.Float64() < rotateP {
		slot := g.rng.Intn(len(g.pool))
		// Keep the old value's flow: fold it into the new one first so
		// the program stays sensitive to its history.
		g.uniq++
		folded := g.fn.NewValue(fmt.Sprintf("t%d", g.uniq))
		g.b.OpTo(ir.Xor, folded, v, g.pool[slot])
		g.pool[slot] = folded
	}
}

// loop emits a counted loop whose body is a nested segment.
func (g *generator) loop(depthBudget int) {
	g.uniq++
	id := g.uniq
	head := g.fn.NewBlock(fmt.Sprintf("head%d", id))
	body := g.fn.NewBlock(fmt.Sprintf("body%d", id))
	next := g.fn.NewBlock(fmt.Sprintf("next%d", id))
	trip := g.cfg.TripCount
	if g.cfg.Irregularity > 0 {
		// Irregular programs have erratic trip counts.
		trip = 1 + g.rng.Intn(2*g.cfg.TripCount)
	}
	g.fn.TripCount[head.Name] = trip

	i := g.b.ConstNamed(fmt.Sprintf("i%d", id), 0)
	limit := g.b.ConstNamed(fmt.Sprintf("n%d", id), int64(trip))
	one := g.b.ConstNamed(fmt.Sprintf("one%d", id), 1)
	g.b.Br(head)

	g.b.SetBlock(head)
	c := g.b.CmpLT(i, limit)
	g.b.CondBr(c, body, next)

	g.b.SetBlock(body)
	g.straight()
	if depthBudget > 1 && g.rng.Float64() < 0.4 {
		g.segment(depthBudget - 1)
	}
	g.b.OpTo(ir.Add, i, i, one)
	g.b.Br(head)

	g.b.SetBlock(next)
}

// diamond emits a data-dependent two-way branch; each arm perturbs a
// different part of the working set.
func (g *generator) diamond(depthBudget int) {
	g.uniq++
	id := g.uniq
	left := g.fn.NewBlock(fmt.Sprintf("left%d", id))
	right := g.fn.NewBlock(fmt.Sprintf("right%d", id))
	join := g.fn.NewBlock(fmt.Sprintf("join%d", id))

	a := g.pool[g.rng.Intn(len(g.pool))]
	b := g.pool[g.rng.Intn(len(g.pool))]
	c := g.b.CmpLT(a, b)
	g.b.CondBr(c, left, right)

	// Both arms must leave the pool IDENTICAL (same value objects), or
	// the join would see inconsistent working sets. Arms therefore
	// redefine pool slots via OpTo on the same values.
	g.b.SetBlock(left)
	g.armOps()
	if depthBudget > 1 && g.rng.Float64() < 0.3*g.cfg.Irregularity {
		g.segment(depthBudget - 1)
	}
	g.b.Br(join)

	g.b.SetBlock(right)
	g.armOps()
	g.b.Br(join)

	g.b.SetBlock(join)
}

// armOps mutates pool slots in place (OpTo on existing values), which
// is join-safe.
func (g *generator) armOps() {
	n := 1 + g.rng.Intn(g.cfg.OpsPerBlock)
	for i := 0; i < n; i++ {
		slot := g.rng.Intn(len(g.pool))
		a := g.pool[g.rng.Intn(len(g.pool))]
		op := genOps[g.rng.Intn(len(genOps))]
		g.b.OpTo(op, g.pool[slot], g.pool[slot], a)
	}
}
