// Package opt implements the thermal-aware program transformations the
// paper's §4 proposes, each driven by the results of the thermal
// data-flow analysis:
//
//   - SpillCritical: "the greatest benefit will be achieved by spilling
//     these 'critical' variables to memory";
//   - SplitLiveRanges: "or splitting them (via copy insertion) to
//     spread their accesses across a multitude of registers";
//   - PromoteLoads: "register promotion (i.e., promoting some
//     memory-resident variables into registers)";
//   - InsertCooldownNops: "the insertion of NOP instructions gives the
//     RF a chance to cool down between accesses";
//   - ThermalReassign: re-allocation with the Coldest policy seeded by
//     the predicted per-register heat (the re-assignment of [3]).
//
// All transforms clone their input; the original function is never
// mutated.
package opt

import (
	"fmt"

	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
	"thermflow/internal/tdfa"
)

// SpillCritical spills the top n variables of the criticality ranking
// to memory and returns the rewritten clone. Parameters and values
// that vanished (e.g. already spilled) are skipped.
func SpillCritical(fn *ir.Function, ranking []tdfa.VariableHeat, n int) (*ir.Function, error) {
	out := fn.Clone()
	spilled := 0
	for _, vh := range ranking {
		if spilled >= n {
			break
		}
		if out.ValueNamed(vh.Value.Name) == nil {
			continue
		}
		if _, _, err := regalloc.SpillNamed(out, vh.Value.Name); err != nil {
			return nil, fmt.Errorf("opt: spilling %s: %w", vh.Value.Name, err)
		}
		spilled++
	}
	if spilled == 0 && n > 0 && len(ranking) > 0 {
		return nil, fmt.Errorf("opt: no spillable variable among %d candidates", len(ranking))
	}
	return out, nil
}

// ThermalReassign re-runs register allocation with the Coldest policy,
// seeding each register's heat account with the temperature rise the
// analysis predicted for it. The hottest registers are thereby avoided
// until cooler ones fill up.
func ThermalReassign(fn *ir.Function, res *tdfa.Result, base regalloc.Config) (*regalloc.Allocation, error) {
	heat := make([]float64, len(res.RegPeak))
	amb := baseAmbient(res)
	for r, t := range res.RegPeak {
		h := t - amb
		if h < 0 {
			h = 0
		}
		// Scale into the same unit as access weights so the seed
		// competes meaningfully with new assignments.
		heat[r] = h * 10
	}
	base.Policy = regalloc.Coldest
	base.HeatSeed = heat
	return regalloc.Allocate(fn.Clone(), base)
}

func baseAmbient(res *tdfa.Result) float64 {
	// The coldest predicted register is the best ambient estimate
	// available without re-deriving the tech parameters.
	min := res.RegPeak[0]
	for _, t := range res.RegPeak {
		if t < min {
			min = t
		}
	}
	return min
}
