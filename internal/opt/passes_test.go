package opt

import (
	"testing"

	"thermflow/internal/ir"
	"thermflow/internal/sim"
	"thermflow/internal/workload"
)

func TestPropagateConstantsFolds(t *testing.T) {
	src := `
func f() {
entry:
  a = const 6
  b = const 7
  p = mul a, b
  q = add p, a
  ret q
}`
	f := mustParse(t, src)
	out, folded, err := PropagateConstants(f)
	if err != nil {
		t.Fatal(err)
	}
	if folded < 2 {
		t.Errorf("folded = %d, want >= 2", folded)
	}
	// All arithmetic gone: only consts and the ret remain.
	out.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op != ir.Const && in.Op != ir.Ret {
			t.Errorf("unexpected op after folding: %v", in)
		}
	})
	res, err := sim.Run(out, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 48 {
		t.Errorf("ret = %d, want 48", res.Ret)
	}
}

func TestPropagateConstantsFoldsBranch(t *testing.T) {
	src := `
func f() {
entry:
  a = const 1
  b = const 2
  c = cmplt a, b
  cbr c, yes, no
yes:
  r = const 10
  ret r
no:
  r2 = const 20
  ret r2
}`
	f := mustParse(t, src)
	out, _, err := PropagateConstants(f)
	if err != nil {
		t.Fatal(err)
	}
	// The 'no' block is unreachable after folding and must be gone.
	if out.BlockNamed("no") != nil {
		t.Error("unreachable block survived")
	}
	res, err := sim.Run(out, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 10 {
		t.Errorf("ret = %d, want 10", res.Ret)
	}
}

func TestPropagateConstantsRespectsMultipleDefs(t *testing.T) {
	// i is redefined in the loop: not a constant despite `i = const 0`.
	src := `
func f(n) {
entry:
  i = const 0
  one = const 1
  br head
head:
  c = cmplt i, n
  cbr c, body, exit
body:
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret i
}`
	f := mustParse(t, src)
	out, _, err := PropagateConstants(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(out, sim.Options{Args: []int64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 5 {
		t.Errorf("loop result = %d, want 5", res.Ret)
	}
}

func TestPropagateConstantsDivByZero(t *testing.T) {
	src := `
func f() {
entry:
  a = const 9
  z = const 0
  q = div a, z
  ret q
}`
	f := mustParse(t, src)
	out, _, err := PropagateConstants(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(out, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 0 {
		t.Errorf("const-folded div-by-zero = %d, want 0 (simulator semantics)", res.Ret)
	}
}

func TestEliminateDeadCode(t *testing.T) {
	src := `
func f() {
entry:
  a = const 1
  b = const 2
  dead1 = add a, b
  dead2 = mul dead1, dead1
  live = add a, b
  ret live
}`
	f := mustParse(t, src)
	out, removed, err := EliminateDeadCode(f)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("removed = %d, want 2 (the dead chain)", removed)
	}
	res, err := sim.Run(out, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 3 {
		t.Errorf("ret = %d, want 3", res.Ret)
	}
}

func TestDCEKeepsStores(t *testing.T) {
	src := `
func f(p) {
entry:
  a = const 1
  store a, p, 0
  ret
}`
	f := mustParse(t, src)
	out, removed, err := EliminateDeadCode(f)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Errorf("removed %d instructions; stores and their inputs are roots", removed)
	}
	mem := sim.Memory{}
	if _, err := sim.Run(out, sim.Options{Args: []int64{100}, Mem: mem}); err != nil {
		t.Fatal(err)
	}
	if mem[100] != 1 {
		t.Error("store lost")
	}
}

// Passes preserve semantics across every kernel and a set of random
// programs.
func TestPassesPreserveSemantics(t *testing.T) {
	check := func(t *testing.T, fn *ir.Function, args []int64, mem sim.Memory) {
		t.Helper()
		memCopy := sim.Memory{}
		for k, v := range mem {
			memCopy[k] = v
		}
		want, err := sim.Run(fn, sim.Options{Args: args, Mem: mem})
		if err != nil {
			t.Fatal(err)
		}
		cp, _, err := PropagateConstants(fn)
		if err != nil {
			t.Fatal(err)
		}
		dce, _, err := EliminateDeadCode(cp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.Run(dce, sim.Options{Args: args, Mem: memCopy})
		if err != nil {
			t.Fatal(err)
		}
		if got.Ret != want.Ret {
			t.Errorf("passes changed result: %d -> %d", want.Ret, got.Ret)
		}
		if got.Instrs > want.Instrs {
			t.Errorf("passes increased dynamic instructions: %d -> %d", want.Instrs, got.Instrs)
		}
	}
	for _, k := range workload.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			args, mem := k.Setup(6)
			check(t, k.Fn, args, mem)
		})
	}
	for seed := int64(0); seed < 6; seed++ {
		fn := workload.Generate(workload.GenConfig{Seed: seed, Irregularity: 0.5})
		t.Run(fn.Name, func(t *testing.T) {
			check(t, fn, nil, sim.Memory{})
		})
	}
}

// Constant propagation on generated programs can fold a lot (their
// pools start as constants); pressure must not increase.
func TestConstPropReducesGeneratedPrograms(t *testing.T) {
	fn := workload.Generate(workload.GenConfig{Seed: 4, Pressure: 10})
	out, folded, err := PropagateConstants(fn)
	if err != nil {
		t.Fatal(err)
	}
	if folded == 0 {
		t.Skip("nothing folded for this seed")
	}
	if out.NumInstrs() > fn.NumInstrs() {
		t.Errorf("instruction count grew: %d -> %d", fn.NumInstrs(), out.NumInstrs())
	}
}
