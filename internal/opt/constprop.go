package opt

import (
	"fmt"

	"thermflow/internal/ir"
)

// PropagateConstants folds constant expressions and statically decided
// branches. On the non-SSA IR a value is constant only when every one
// of its definitions produces the same constant. Conditional branches
// on constants become unconditional, and blocks made unreachable are
// removed. The transform reduces both work and register pressure — a
// conventional enabling pass before the thermal-aware ones.
//
// Returns the rewritten clone and the number of folded instructions.
func PropagateConstants(fn *ir.Function) (*ir.Function, int, error) {
	out := fn.Clone()
	folded := 0
	for {
		n := foldOnce(out)
		folded += n
		if n == 0 {
			break
		}
	}
	n, err := removeUnreachable(out)
	if err != nil {
		return nil, 0, err
	}
	_ = n
	out.Renumber()
	if err := ir.Verify(out); err != nil {
		return nil, 0, fmt.Errorf("opt: constant propagation broke the IR: %w", err)
	}
	return out, folded, nil
}

// constValue reports whether value v is the same constant at every
// definition.
func constValues(fn *ir.Function) map[*ir.Value]int64 {
	candidate := map[*ir.Value]int64{}
	bad := map[*ir.Value]bool{}
	for _, p := range fn.Params {
		bad[p] = true // parameters are runtime inputs
	}
	fn.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Def == nil {
			return
		}
		if in.Op != ir.Const {
			bad[in.Def] = true
			return
		}
		if prev, ok := candidate[in.Def]; ok && prev != in.Imm {
			bad[in.Def] = true
			return
		}
		candidate[in.Def] = in.Imm
	})
	for v := range bad {
		delete(candidate, v)
	}
	return candidate
}

func foldOnce(fn *ir.Function) int {
	consts := constValues(fn)
	folded := 0
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			switch {
			case in.Def != nil && in.Op != ir.Const && in.Op != ir.Load:
				vals := make([]int64, len(in.Uses))
				all := true
				for k, u := range in.Uses {
					v, ok := consts[u]
					if !ok {
						all = false
						break
					}
					vals[k] = v
				}
				if !all {
					continue
				}
				res, ok := evalConst(in.Op, vals)
				if !ok {
					continue
				}
				nc, err := ir.NewInstr(ir.Const, in.Def, nil, res)
				if err != nil {
					panic(err) // statically well-formed
				}
				b.RemoveAt(i)
				b.InsertAt(i, nc)
				folded++
			case in.Op == ir.CondBr:
				v, ok := consts[in.Uses[0]]
				if !ok {
					continue
				}
				target := in.Targets[1]
				if v != 0 {
					target = in.Targets[0]
				}
				br, err := ir.NewInstr(ir.Br, nil, nil, 0, target)
				if err != nil {
					panic(err)
				}
				b.RemoveAt(i)
				b.InsertAt(i, br)
				folded++
			}
		}
	}
	return folded
}

// evalConst interprets one pure opcode over constant operands,
// mirroring the simulator's semantics exactly.
func evalConst(op ir.Op, v []int64) (int64, bool) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ir.Mov:
		return v[0], true
	case ir.Add:
		return v[0] + v[1], true
	case ir.Sub:
		return v[0] - v[1], true
	case ir.Mul:
		return v[0] * v[1], true
	case ir.Div:
		if v[1] == 0 {
			return 0, true
		}
		return v[0] / v[1], true
	case ir.Rem:
		if v[1] == 0 {
			return 0, true
		}
		return v[0] % v[1], true
	case ir.And:
		return v[0] & v[1], true
	case ir.Or:
		return v[0] | v[1], true
	case ir.Xor:
		return v[0] ^ v[1], true
	case ir.Shl:
		return v[0] << (uint64(v[1]) & 63), true
	case ir.Shr:
		return v[0] >> (uint64(v[1]) & 63), true
	case ir.Neg:
		return -v[0], true
	case ir.Not:
		return ^v[0], true
	case ir.CmpEQ:
		return b2i(v[0] == v[1]), true
	case ir.CmpNE:
		return b2i(v[0] != v[1]), true
	case ir.CmpLT:
		return b2i(v[0] < v[1]), true
	case ir.CmpLE:
		return b2i(v[0] <= v[1]), true
	case ir.CmpGT:
		return b2i(v[0] > v[1]), true
	case ir.CmpGE:
		return b2i(v[0] >= v[1]), true
	}
	return 0, false
}

// removeUnreachable deletes blocks no longer reachable from the entry
// (after branch folding) and returns how many were removed.
func removeUnreachable(fn *ir.Function) (int, error) {
	reached := map[*ir.Block]bool{}
	var stack []*ir.Block
	if fn.Entry == nil {
		return 0, fmt.Errorf("opt: function without entry")
	}
	stack = append(stack, fn.Entry)
	reached[fn.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !reached[s] {
				reached[s] = true
				stack = append(stack, s)
			}
		}
	}
	kept := fn.Blocks[:0]
	removed := 0
	for _, b := range fn.Blocks {
		if reached[b] {
			kept = append(kept, b)
		} else {
			removed++
			delete(fn.TripCount, b.Name)
		}
	}
	fn.Blocks = kept
	return removed, nil
}
