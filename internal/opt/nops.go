package opt

import (
	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
	"thermflow/internal/tdfa"
)

// NopConfig tunes cool-down NOP insertion.
type NopConfig struct {
	// Threshold is the predicted peak temperature (K) above which an
	// instruction's accessed registers are considered "extremely hot".
	Threshold float64
	// Count is the number of NOPs inserted after each hot instruction
	// (0 = 2).
	Count int
}

// InsertCooldownNops inserts NOPs after every instruction whose
// accessed registers' predicted peak temperature exceeds the threshold
// — §4's last-resort cooling measure ("it can affect overall system
// performance and should be applied only if no other option ... is
// feasible"). Returns the rewritten clone and the number of NOPs
// inserted.
func InsertCooldownNops(fn *ir.Function, alloc *regalloc.Allocation, res *tdfa.Result, cfgN NopConfig) (*ir.Function, int) {
	count := cfgN.Count
	if count <= 0 {
		count = 2
	}
	out := fn.Clone()
	inserted := 0
	for _, b := range out.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if in.IsTerminator() {
				continue
			}
			hot := false
			for _, v := range in.AccessedValues() {
				r := alloc.RegOf[v.ID]
				if r >= 0 && r < len(res.RegPeak) && res.RegPeak[r] > cfgN.Threshold {
					hot = true
					break
				}
			}
			if !hot {
				continue
			}
			for k := 0; k < count; k++ {
				nop, err := ir.NewInstr(ir.Nop, nil, nil, 0)
				if err != nil {
					panic(err) // statically well-formed
				}
				b.InsertAt(i+1, nop)
				inserted++
			}
			i += count // skip the NOPs we just inserted
		}
	}
	out.Renumber()
	return out, inserted
}
