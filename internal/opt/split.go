package opt

import (
	"fmt"

	"thermflow/internal/ir"
)

// SplitLiveRanges splits the live range of each named variable by copy
// insertion: within every block that reads the variable, the first read
// (and each read after an intervening redefinition) goes through a
// fresh block-local copy. The copies are new values the allocator can
// place in different registers, spreading the variable's accesses
// "across a multitude of registers" (§4).
//
// Returns the rewritten clone and the number of copies inserted.
func SplitLiveRanges(fn *ir.Function, names []string) (*ir.Function, int, error) {
	out := fn.Clone()
	copies := 0
	for _, name := range names {
		v := out.ValueNamed(name)
		if v == nil {
			return nil, 0, fmt.Errorf("opt: no value named %q", name)
		}
		copies += splitValue(out, v)
	}
	out.Renumber()
	if err := ir.Verify(out); err != nil {
		return nil, 0, fmt.Errorf("opt: live-range splitting broke the IR: %w", err)
	}
	return out, copies, nil
}

func splitValue(fn *ir.Function, v *ir.Value) int {
	copies := 0
	for _, b := range fn.Blocks {
		var alias *ir.Value
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			usesV := false
			for _, u := range in.Uses {
				if u == v {
					usesV = true
					break
				}
			}
			// A mov feeding the alias itself must not be rewritten
			// (it is the copy we just inserted).
			if usesV && !(in.Op == ir.Mov && in.Def == alias) {
				if alias == nil {
					alias = fn.NewValue(v.Name + ".s")
					cp, err := ir.NewInstr(ir.Mov, alias, []*ir.Value{v}, 0)
					if err != nil {
						panic(err) // statically well-formed
					}
					b.InsertAt(i, cp)
					i++
					copies++
				}
				in.ReplaceUse(v, alias)
			}
			// A redefinition of v invalidates the alias: later reads
			// must observe the new value.
			if in.Def == v {
				alias = nil
			}
		}
	}
	return copies
}
