package opt

import (
	"fmt"

	"thermflow/internal/ir"
)

// EliminateDeadCode removes instructions whose results are never used
// and that have no side effects (stores, branches and returns are
// roots; loads are treated as pure because the simulated memory has no
// volatile locations). Iterates to a fixpoint so whole dead chains
// disappear. Dead code still heats registers in the thermal model, so
// removing it is itself a (mild) thermal optimization.
//
// Returns the rewritten clone and the number of removed instructions.
func EliminateDeadCode(fn *ir.Function) (*ir.Function, int, error) {
	out := fn.Clone()
	removed := 0
	for {
		n := dceOnce(out)
		removed += n
		if n == 0 {
			break
		}
	}
	out.Renumber()
	if err := ir.Verify(out); err != nil {
		return nil, 0, fmt.Errorf("opt: dead-code elimination broke the IR: %w", err)
	}
	return out, removed, nil
}

func dceOnce(fn *ir.Function) int {
	used := map[*ir.Value]bool{}
	fn.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		for _, u := range in.Uses {
			used[u] = true
		}
	})
	removed := 0
	for _, b := range fn.Blocks {
		for i := 0; i < len(b.Instrs); {
			in := b.Instrs[i]
			// Calls are roots: the callee may store to memory.
			if in.Def != nil && !used[in.Def] && !in.Op.IsTerminator() &&
				in.Op != ir.Store && in.Op != ir.Call {
				b.RemoveAt(i)
				removed++
				continue
			}
			i++
		}
	}
	return removed
}
