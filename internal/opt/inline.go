package opt

import (
	"fmt"

	"thermflow/internal/ir"
)

// inlineRounds bounds the flattening iterations; Module.Verify rejects
// recursion, so the bound only guards against malformed inputs.
const inlineRounds = 64

// Inline flattens the named function of the module into a single
// call-free function by repeatedly substituting callee bodies at call
// sites. The paper describes its analysis "in the context of a single
// procedure"; this is the lowering that gets interprocedural programs
// into that form.
func Inline(m *ir.Module, root string) (*ir.Function, error) {
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("opt: refusing to inline ill-formed module: %w", err)
	}
	rootFn := m.Func(root)
	if rootFn == nil {
		return nil, fmt.Errorf("opt: no function %q in module", root)
	}
	out := rootFn.Clone()
	for round := 0; round < inlineRounds; round++ {
		site := findCall(out)
		if site == nil {
			out.Renumber()
			if err := ir.Verify(out); err != nil {
				return nil, fmt.Errorf("opt: inlining broke the IR: %w", err)
			}
			return out, nil
		}
		callee := m.Func(site.in.Callee)
		if callee == nil {
			return nil, fmt.Errorf("opt: call to unknown function %q", site.in.Callee)
		}
		inlineCall(out, site, callee)
	}
	return nil, fmt.Errorf("opt: inlining did not terminate after %d rounds", inlineRounds)
}

type callSite struct {
	b   *ir.Block
	idx int
	in  *ir.Instr
}

func findCall(fn *ir.Function) *callSite {
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.Call {
				return &callSite{b: b, idx: i, in: in}
			}
		}
	}
	return nil
}

// inlineCall splices a copy of callee into fn at the call site: the
// call block is split, arguments are copied into fresh parameter
// values, the callee's blocks are cloned with values and branch targets
// remapped, and each return becomes a move into the call's result
// followed by a branch to the continuation.
func inlineCall(fn *ir.Function, site *callSite, callee *ir.Function) {
	prefix := callee.Name + "."

	// Map callee values to fresh caller values.
	vmap := make(map[*ir.Value]*ir.Value, len(callee.Values()))
	for _, v := range callee.Values() {
		vmap[v] = fn.NewValue(prefix + v.Name)
	}
	// Map callee blocks to fresh caller blocks.
	bmap := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	for _, b := range callee.Blocks {
		nb := fn.NewBlock(prefix + b.Name)
		bmap[b] = nb
		if trip, ok := callee.TripCount[b.Name]; ok {
			fn.TripCount[nb.Name] = trip
		}
	}

	// Split the call block: instructions after the call move to the
	// continuation block.
	cont := fn.NewBlock(prefix + "cont")
	for len(site.b.Instrs) > site.idx+1 {
		moved := site.b.RemoveAt(site.idx + 1)
		cont.Append(moved)
	}
	// Remove the call itself; copy arguments into the parameter values.
	call := site.b.RemoveAt(site.idx)
	bld := ir.NewBuilder(fn, site.b)
	for i, p := range callee.Params {
		bld.MovTo(vmap[p], call.Uses[i])
	}
	bld.Br(bmap[callee.Entry])

	// Clone the callee body.
	for _, b := range callee.Blocks {
		nb := bmap[b]
		nbld := ir.NewBuilder(fn, nb)
		for _, in := range b.Instrs {
			if in.Op == ir.Ret {
				if len(in.Uses) == 1 {
					nbld.MovTo(call.Def, vmap[in.Uses[0]])
				} else {
					zero, err := ir.NewInstr(ir.Const, call.Def, nil, 0)
					if err != nil {
						panic(err) // statically well-formed
					}
					nb.Append(zero)
				}
				nbld.Br(cont)
				continue
			}
			ni := &ir.Instr{
				Op:      in.Op,
				Imm:     in.Imm,
				Latency: in.Latency,
				Callee:  in.Callee,
			}
			if in.Def != nil {
				ni.Def = vmap[in.Def]
			}
			if len(in.Uses) > 0 {
				ni.Uses = make([]*ir.Value, len(in.Uses))
				for k, u := range in.Uses {
					ni.Uses[k] = vmap[u]
				}
			}
			if len(in.Targets) > 0 {
				ni.Targets = make([]*ir.Block, len(in.Targets))
				for k, t := range in.Targets {
					ni.Targets[k] = bmap[t]
				}
			}
			nb.Append(ni)
		}
	}
	fn.Renumber()
}
