package opt

import (
	"testing"

	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
	"thermflow/internal/sim"
	"thermflow/internal/tdfa"
)

const moduleSrc = `
func square(x) {
entry:
  r = mul x, x
  ret r
}

func scale(v, k) {
entry:
  c = cmpgt k, v
  cbr c, big, small
big:
  r = mul v, k
  ret r
small:
  r2 = add v, k
  ret r2
}

func main(a, b) {
entry:
  sa = call square, a
  sb = call square, b
  s = add sa, sb
  t = call scale, s, b
  ret t
}
`

func parseModule(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	return m
}

func TestInlineFlattens(t *testing.T) {
	m := parseModule(t, moduleSrc)
	flat, err := Inline(m, "main")
	if err != nil {
		t.Fatalf("Inline: %v", err)
	}
	flat.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.Call {
			t.Fatalf("call survived inlining: %v", in)
		}
	})
	if err := ir.Verify(flat); err != nil {
		t.Fatalf("inlined function ill-formed: %v", err)
	}
}

func TestInlinePreservesSemantics(t *testing.T) {
	m := parseModule(t, moduleSrc)
	flat, err := Inline(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]int64{{3, 4}, {0, 0}, {-5, 2}, {100, 1}} {
		want, err := sim.Run(m.Func("main"), sim.Options{Args: args, Module: m})
		if err != nil {
			t.Fatalf("module run %v: %v", args, err)
		}
		got, err := sim.Run(flat, sim.Options{Args: args})
		if err != nil {
			t.Fatalf("flat run %v: %v", args, err)
		}
		if want.Ret != got.Ret {
			t.Errorf("args %v: module %d, inlined %d", args, want.Ret, got.Ret)
		}
	}
}

func TestInlineBareRetYieldsZero(t *testing.T) {
	m := parseModule(t, `
func noret(x) {
entry:
  two = const 2
  y = mul x, two
  ret
}
func main(a) {
entry:
  v = call noret, a
  ret v
}`)
	flat, err := Inline(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.Run(flat, sim.Options{Args: []int64{9}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Ret != 0 {
		t.Errorf("bare-ret callee produced %d, want 0", got.Ret)
	}
}

func TestInlineCopiesTripHints(t *testing.T) {
	m := parseModule(t, `
func looper(n) {
entry:
  i = const 0
  one = const 1
  br head
head: !trip 33
  c = cmplt i, n
  cbr c, body, exit
body:
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret i
}
func main(n) {
entry:
  v = call looper, n
  ret v
}`)
	flat, err := Inline(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for name, trip := range flat.TripCount {
		if trip == 33 {
			found = true
			_ = name
		}
	}
	if !found {
		t.Error("trip hint lost during inlining")
	}
}

func TestInlineErrors(t *testing.T) {
	m := parseModule(t, moduleSrc)
	if _, err := Inline(m, "ghost"); err == nil {
		t.Error("unknown root accepted")
	}
}

// The full pipeline works on an inlined interprocedural program:
// allocation, thermal analysis, execution with tracing.
func TestInlinedProgramThroughPipeline(t *testing.T) {
	m := parseModule(t, moduleSrc)
	flat, err := Inline(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	a, err := regalloc.Allocate(flat, regalloc.Config{NumRegs: 64, Policy: regalloc.FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tdfa.Analyze(a.Fn, tdfa.Config{Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("analysis of inlined program did not converge")
	}
	run, err := sim.Run(a.Fn, sim.Options{Args: []int64{3, 4}, Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	if run.Trace.TotalAccesses() == 0 {
		t.Error("no trace from inlined program")
	}
	// square(3)+square(4) = 25; scale(25, 4): 4 > 25 false → 25+4 = 29.
	if run.Ret != 29 {
		t.Errorf("ret = %d, want 29", run.Ret)
	}
}

// Tracing a function that still contains calls must fail loudly.
func TestTracingRequiresCallFree(t *testing.T) {
	m := parseModule(t, moduleSrc)
	main := m.Func("main")
	a, err := regalloc.Allocate(main, regalloc.Config{NumRegs: 64, Policy: regalloc.FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(a.Fn, sim.Options{Args: []int64{1, 2}, Alloc: a, Module: m}); err == nil {
		t.Error("tracing through calls accepted")
	}
}

// Calls without a module must fail loudly.
func TestCallWithoutModule(t *testing.T) {
	m := parseModule(t, moduleSrc)
	if _, err := sim.Run(m.Func("main"), sim.Options{Args: []int64{1, 2}}); err == nil {
		t.Error("call executed without module")
	}
}
