package opt

import (
	"testing"

	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
	"thermflow/internal/sim"
	"thermflow/internal/tdfa"
)

const loopSrc = `
func loop(n) {
entry:
  i = const 0
  one = const 1
  acc = const 0
  br head
head: !trip 50
  c = cmplt i, n
  cbr c, body, exit
body:
  a2 = add acc, i
  acc = mov a2
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret acc
}`

func mustParse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func analyzed(t *testing.T, f *ir.Function) (*regalloc.Allocation, *tdfa.Result) {
	t.Helper()
	a, err := regalloc.Allocate(f, regalloc.Config{NumRegs: 64, Policy: regalloc.FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tdfa.Analyze(a.Fn, tdfa.Config{Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	return a, res
}

func runSum(t *testing.T, f *ir.Function, n int64) int64 {
	t.Helper()
	res, err := sim.Run(f, sim.Options{Args: []int64{n}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Ret
}

func TestSpillCriticalPreservesSemantics(t *testing.T) {
	f := mustParse(t, loopSrc)
	_, res := analyzed(t, f)
	out, err := SpillCritical(f, res.Critical, 2)
	if err != nil {
		t.Fatalf("SpillCritical: %v", err)
	}
	if err := ir.Verify(out); err != nil {
		t.Fatalf("spilled function ill-formed: %v", err)
	}
	want := runSum(t, f, 10)
	got := runSum(t, out, 10)
	if got != want {
		t.Errorf("spilling changed result: %d -> %d", want, got)
	}
	// Memory traffic must have appeared.
	loads := 0
	out.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.Load {
			loads++
		}
	})
	if loads == 0 {
		t.Error("no loads inserted by spilling")
	}
	// Original untouched.
	if f.ValueNamed(".spillbase") != nil {
		t.Error("original mutated")
	}
}

func TestSpillCriticalSkipsVanished(t *testing.T) {
	f := mustParse(t, loopSrc)
	_, res := analyzed(t, f)
	// Fake a ranking entry whose value does not exist in the clone.
	ghostFn := ir.NewFunc("ghost")
	ghost := ghostFn.NewValue("ghost")
	ranking := append([]tdfa.VariableHeat{{Value: ghost, Score: 99}}, res.Critical...)
	out, err := SpillCritical(f, ranking, 1)
	if err != nil {
		t.Fatalf("SpillCritical: %v", err)
	}
	if runSum(t, out, 5) != runSum(t, f, 5) {
		t.Error("semantics changed")
	}
}

func TestSplitLiveRanges(t *testing.T) {
	f := mustParse(t, loopSrc)
	out, copies, err := SplitLiveRanges(f, []string{"i", "acc"})
	if err != nil {
		t.Fatalf("SplitLiveRanges: %v", err)
	}
	if copies == 0 {
		t.Fatal("no copies inserted")
	}
	if got, want := runSum(t, out, 10), runSum(t, f, 10); got != want {
		t.Errorf("splitting changed result: %d -> %d", want, got)
	}
	// The split must create new values the allocator can separate.
	if out.NumValues() <= f.NumValues() {
		t.Error("no new values created")
	}
	if _, _, err := SplitLiveRanges(f, []string{"nonexistent"}); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSplitThenAllocateUsesMoreRegisters(t *testing.T) {
	f := mustParse(t, loopSrc)
	out, _, err := SplitLiveRanges(f, []string{"i", "acc", "one"})
	if err != nil {
		t.Fatal(err)
	}
	aBase, err := regalloc.Allocate(f, regalloc.Config{NumRegs: 64, Policy: regalloc.RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	aSplit, err := regalloc.Allocate(out, regalloc.Config{NumRegs: 64, Policy: regalloc.RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if len(aSplit.UsedRegs()) <= len(aBase.UsedRegs()) {
		t.Errorf("splitting did not spread registers: %d vs %d",
			len(aSplit.UsedRegs()), len(aBase.UsedRegs()))
	}
}

func TestPromoteLoads(t *testing.T) {
	src := `
func f(tab, n) {
entry:
  i = const 0
  one = const 1
  acc = const 0
  br head
head: !trip 20
  c = cmplt i, n
  cbr c, body, exit
body:
  k = load tab, 0
  t1 = mul k, i
  a2 = add acc, t1
  acc = mov a2
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret acc
}`
	f := mustParse(t, src)
	out, eliminated := PromoteLoads(f)
	if eliminated == 0 {
		t.Fatal("no loads promoted")
	}
	if err := ir.Verify(out); err != nil {
		t.Fatalf("promoted function ill-formed: %v", err)
	}
	mem := sim.Memory{1000: 3}
	before, err := sim.Run(f, sim.Options{Args: []int64{1000, 5}, Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	mem2 := sim.Memory{1000: 3}
	after, err := sim.Run(out, sim.Options{Args: []int64{1000, 5}, Mem: mem2})
	if err != nil {
		t.Fatal(err)
	}
	if before.Ret != after.Ret {
		t.Errorf("promotion changed result: %d -> %d", before.Ret, after.Ret)
	}
	// Each in-loop load (latency 2) became a mov (latency 1), at the
	// cost of one hoisted load: total cycles must drop.
	if after.Cycles >= before.Cycles {
		t.Errorf("cycle count did not drop: %d -> %d", before.Cycles, after.Cycles)
	}
	// Dynamic load count drops to one.
	loadsAfter := 0
	out.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.Load {
			loadsAfter++
		}
	})
	if loadsAfter != 1 {
		t.Errorf("static loads after promotion = %d, want 1", loadsAfter)
	}
}

func TestPromoteLoadsRespectsStores(t *testing.T) {
	src := `
func f(tab) {
entry:
  x = load tab, 0
  one = const 1
  y = add x, one
  store y, tab, 0
  z = load tab, 0
  ret z
}`
	f := mustParse(t, src)
	_, eliminated := PromoteLoads(f)
	if eliminated != 0 {
		t.Error("promoted a load whose address is stored to")
	}
}

func TestPromoteLoadsPoisonedByUnknownBase(t *testing.T) {
	src := `
func f(tab) {
entry:
  two = const 2
  p = add tab, two
  x = load tab, 0
  y = load tab, 0
  s = add x, y
  store s, p, 0
  ret s
}`
	f := mustParse(t, src)
	_, eliminated := PromoteLoads(f)
	if eliminated != 0 {
		t.Error("promotion proceeded despite unanalyzable store base")
	}
}

func TestInsertCooldownNops(t *testing.T) {
	f := mustParse(t, loopSrc)
	a, res := analyzed(t, f)
	// Threshold below peak: hot instructions exist.
	out, inserted := InsertCooldownNops(a.Fn, a, res, NopConfig{
		Threshold: res.PeakTemp - 0.001,
		Count:     2,
	})
	if inserted == 0 {
		t.Fatal("no NOPs inserted despite sub-peak threshold")
	}
	if err := ir.Verify(out); err != nil {
		t.Fatalf("NOP-padded function ill-formed: %v", err)
	}
	// Semantics unchanged, cycles increased.
	before, err := sim.Run(a.Fn, sim.Options{Args: []int64{10}})
	if err != nil {
		t.Fatal(err)
	}
	after, err := sim.Run(out, sim.Options{Args: []int64{10}})
	if err != nil {
		t.Fatal(err)
	}
	if before.Ret != after.Ret {
		t.Errorf("NOPs changed result: %d -> %d", before.Ret, after.Ret)
	}
	if after.Cycles <= before.Cycles {
		t.Error("NOPs did not cost cycles")
	}
	// Threshold above peak: nothing inserted.
	_, none := InsertCooldownNops(a.Fn, a, res, NopConfig{Threshold: res.PeakTemp + 100})
	if none != 0 {
		t.Errorf("NOPs inserted above-peak threshold: %d", none)
	}
}

func TestThermalReassignAvoidsHotRegs(t *testing.T) {
	f := mustParse(t, loopSrc)
	a, res := analyzed(t, f)
	re, err := ThermalReassign(a.Fn, res, regalloc.Config{NumRegs: 64})
	if err != nil {
		t.Fatalf("ThermalReassign: %v", err)
	}
	if re.Policy != regalloc.Coldest {
		t.Errorf("policy = %v, want coldest", re.Policy)
	}
	// The previously hottest register must not be reused.
	hottest := res.HottestRegs(1)[0]
	for _, r := range re.UsedRegs() {
		if r == hottest {
			t.Errorf("reassignment reused hottest register %d", hottest)
		}
	}
	// Reassigned program still runs correctly.
	if got, want := runSum(t, re.Fn, 10), runSum(t, f, 10); got != want {
		t.Errorf("reassignment changed semantics: %d vs %d", got, want)
	}
}
