package opt

import (
	"thermflow/internal/cfg"
	"thermflow/internal/ir"
)

// PromoteLoads performs conservative register promotion: loads from a
// (parameter base, constant offset) address that is never stored to
// anywhere in the function are hoisted to a single load in the entry
// block, and all duplicate loads of the same address are replaced by
// the hoisted value. This "promot[es] some memory-resident variables
// into registers" (§4), making register usage more uniform in time.
//
// Returns the rewritten clone and the number of eliminated loads.
func PromoteLoads(fn *ir.Function) (*ir.Function, int) {
	out := fn.Clone()

	type addr struct {
		base *ir.Value
		off  int64
	}
	// Collect stored-to addresses; a store through a non-parameter base
	// or to an unknown base poisons everything conservatively.
	stored := map[addr]bool{}
	poisoned := false
	out.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.Call {
			poisoned = true // the callee may store anywhere
			return
		}
		if in.Op != ir.Store {
			return
		}
		base := in.Uses[1]
		if !base.Param {
			poisoned = true
			return
		}
		stored[addr{base, in.Imm}] = true
	})
	if poisoned {
		out.Renumber()
		return out, 0
	}

	// Group promotable loads by address: base must be a parameter
	// (invariant) and the address never stored.
	loadsAt := map[addr][]*ir.Instr{}
	out.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op != ir.Load {
			return
		}
		base := in.Uses[0]
		if !base.Param {
			return
		}
		a := addr{base, in.Imm}
		if stored[a] {
			return
		}
		loadsAt[a] = append(loadsAt[a], in)
	})

	// An address is worth promoting when it is loaded more than once
	// statically, or when any of its loads sits inside a loop (the
	// dynamic repetition §4 targets).
	g := cfg.Build(out)
	loops := g.Loops(0)
	worthIt := func(loads []*ir.Instr) bool {
		if len(loads) >= 2 {
			return true
		}
		for _, l := range loads {
			if loops.Depth(l.Block()) > 0 {
				return true
			}
		}
		return false
	}

	eliminated := 0
	// Deterministic iteration: order addresses by first load's ID.
	var addrs []addr
	for a, loads := range loadsAt {
		if worthIt(loads) {
			addrs = append(addrs, a)
		}
	}
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			if loadsAt[addrs[j]][0].ID < loadsAt[addrs[i]][0].ID {
				addrs[i], addrs[j] = addrs[j], addrs[i]
			}
		}
	}
	for _, a := range addrs {
		loads := loadsAt[a]
		// Hoist one load to the entry, before the terminator.
		hoisted := out.NewValue(loads[0].Def.Name + ".p")
		ld, err := ir.NewInstr(ir.Load, hoisted, []*ir.Value{a.base}, a.off)
		if err != nil {
			panic(err) // statically well-formed
		}
		entry := out.Entry
		entry.InsertAt(len(entry.Instrs)-1, ld)
		// Replace every original load with a move out of the hoisted
		// value (keeping each load's defined value intact for its
		// users; the move is cheaper and register-resident).
		for _, l := range loads {
			b := l.Block()
			for pos, in := range b.Instrs {
				if in == l {
					mv, err := ir.NewInstr(ir.Mov, l.Def, []*ir.Value{hoisted}, 0)
					if err != nil {
						panic(err)
					}
					b.RemoveAt(pos)
					b.InsertAt(pos, mv)
					eliminated++
					break
				}
			}
		}
	}
	out.Renumber()
	return out, eliminated
}
