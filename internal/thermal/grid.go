// Package thermal implements the RC-equivalent thermal model of the
// register file: a grid of cells, each with a heat capacity, a lateral
// conductance to its 4-connected neighbours and a vertical conductance
// to the ambient (HotSpot-style compact model, the same abstraction the
// paper's emulation framework [5] evaluates in hardware).
//
// The package provides a transient forward-Euler integrator with an
// automatic stability guard, a Gauss-Seidel steady-state solver, and
// the thermal-state vector operations the data-flow analysis needs
// (copy, maximum difference, frequency-weighted merge).
package thermal

import (
	"fmt"
	"math"

	"thermflow/internal/power"
)

// State is a thermal state: one temperature (K) per grid cell. It is
// the data-flow fact of the thermal analysis ("a discrete set of
// points" approximating the continuous temperature field, paper §3).
type State []float64

// Grid is the RC thermal model of a W×H cell array.
type Grid struct {
	// W and H are the grid dimensions in cells.
	W, H int
	// C is the per-cell heat capacity in J/K.
	C float64
	// GLat is the cell-to-cell lateral conductance in W/K.
	GLat float64
	// GVert is the cell-to-ambient vertical conductance in W/K.
	GVert float64
	// TAmb is the ambient (heat-sink) temperature in K.
	TAmb float64

	neighbors [][]int // precomputed 4-connectivity
}

// NewGrid builds the thermal grid for a W×H array using the technology
// parameters.
func NewGrid(w, h int, tech power.Tech) (*Grid, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("thermal: invalid grid %dx%d", w, h)
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	g := &Grid{
		W: w, H: h,
		C:     tech.CellHeatCap(),
		GLat:  tech.LateralG(),
		GVert: tech.VerticalG(),
		TAmb:  tech.TAmbient,
	}
	g.precomputeNeighbors()
	return g, nil
}

func (g *Grid) precomputeNeighbors() {
	n := g.W * g.H
	g.neighbors = make([][]int, n)
	for c := 0; c < n; c++ {
		x, y := c%g.W, c/g.W
		var ns []int
		if x > 0 {
			ns = append(ns, c-1)
		}
		if x < g.W-1 {
			ns = append(ns, c+1)
		}
		if y > 0 {
			ns = append(ns, c-g.W)
		}
		if y < g.H-1 {
			ns = append(ns, c+g.W)
		}
		g.neighbors[c] = ns
	}
}

// NumCells returns the number of cells.
func (g *Grid) NumCells() int { return g.W * g.H }

// NewState returns a state with every cell at the ambient temperature.
func (g *Grid) NewState() State {
	s := make(State, g.NumCells())
	for i := range s {
		s[i] = g.TAmb
	}
	return s
}

// MaxStableStep returns the largest forward-Euler time step that keeps
// the integration stable: dt ≤ C / Σ(conductances) with a 2× safety
// margin.
func (g *Grid) MaxStableStep() float64 {
	gMax := g.GVert + 4*g.GLat
	return 0.5 * g.C / gMax
}

// Step advances the state by dt seconds under the given per-cell power
// input (W). If dt exceeds the stable step it is subdivided
// automatically. pow may be nil for zero power (pure cooling).
func (g *Grid) Step(s State, pow []float64, dt float64) {
	g.StepWith(s, pow, dt, make(State, len(s)))
}

// StepWith is Step with a caller-provided scratch state (same length as
// s), for hot loops that cannot afford the per-call allocation. scratch
// holds no meaningful data afterwards.
func (g *Grid) StepWith(s State, pow []float64, dt float64, scratch State) {
	if dt <= 0 {
		return
	}
	h := g.MaxStableStep()
	steps := int(math.Ceil(dt / h))
	if steps < 1 {
		steps = 1
	}
	// Cap the subdivision work: beyond ~50 thermal time constants the
	// state is at its fixed point, so integrating longer is waste.
	const maxSub = 200000
	if steps > maxSub {
		steps = maxSub
	}
	sub := dt / float64(steps)
	for k := 0; k < steps; k++ {
		g.step(s, scratch, pow, sub)
		copy(s, scratch)
	}
}

func (g *Grid) step(s, out State, pow []float64, dt float64) {
	for c := range s {
		p := 0.0
		if pow != nil {
			p = pow[c]
		}
		flux := p - g.GVert*(s[c]-g.TAmb)
		for _, n := range g.neighbors[c] {
			flux -= g.GLat * (s[c] - s[n])
		}
		out[c] = s[c] + dt*flux/g.C
	}
}

// steadyIterations bounds the Gauss-Seidel sweeps of SteadyState.
const steadyIterations = 100000

// steadyEpsilon is the convergence threshold in kelvin.
const steadyEpsilon = 1e-9

// SteadyState solves the static heat balance GVert·(T−TAmb) +
// Σ GLat·(T−Tn) = P for every cell and returns the resulting state.
func (g *Grid) SteadyState(pow []float64) State {
	s := g.NewState()
	for it := 0; it < steadyIterations; it++ {
		maxDelta := 0.0
		for c := range s {
			p := 0.0
			if pow != nil {
				p = pow[c]
			}
			num := p + g.GVert*g.TAmb
			den := g.GVert
			for _, n := range g.neighbors[c] {
				num += g.GLat * s[n]
				den += g.GLat
			}
			t := num / den
			if d := math.Abs(t - s[c]); d > maxDelta {
				maxDelta = d
			}
			s[c] = t
		}
		if maxDelta < steadyEpsilon {
			break
		}
	}
	return s
}

// Copy returns an independent copy of the state.
func (s State) Copy() State {
	c := make(State, len(s))
	copy(c, s)
	return c
}

// CopyFrom overwrites s with src (same length), avoiding reallocation
// in per-instruction hot loops.
func (s State) CopyFrom(src State) { copy(s, src) }

// MaxDelta returns the largest absolute per-cell temperature difference
// between two states — the quantity compared against δ in the
// convergence test of Fig. 2.
func (s State) MaxDelta(t State) float64 {
	max := 0.0
	for i := range s {
		if d := math.Abs(s[i] - t[i]); d > max {
			max = d
		}
	}
	return max
}

// Max returns the hottest cell temperature.
func (s State) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s {
		if v > max {
			max = v
		}
	}
	return max
}

// Min returns the coldest cell temperature.
func (s State) Min() float64 {
	min := math.Inf(1)
	for _, v := range s {
		if v < min {
			min = v
		}
	}
	return min
}

// Mean returns the average cell temperature.
func (s State) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// ArgMax returns the index of the hottest cell.
func (s State) ArgMax() int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range s {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Scale multiplies every cell by k in place and returns s.
func (s State) Scale(k float64) State {
	for i := range s {
		s[i] *= k
	}
	return s
}

// AddScaled adds k·t to s in place and returns s.
func (s State) AddScaled(t State, k float64) State {
	for i := range s {
		s[i] += k * t[i]
	}
	return s
}

// WeightedMerge returns the weighted average of the given states. This
// is the join operator of the thermal analysis: at a control-flow merge
// the incoming thermal states are blended by edge frequency. Weights
// are normalized; all-zero weights yield an unweighted average.
func WeightedMerge(states []State, weights []float64) State {
	if len(states) == 0 {
		return nil
	}
	out := make(State, len(states[0]))
	WeightedMergeInto(out, states, weights)
	return out
}

// WeightedMergeInto is WeightedMerge writing into dst, for hot loops
// that reuse the destination.
func WeightedMergeInto(dst State, states []State, weights []float64) {
	if len(states) != len(weights) {
		panic("thermal: WeightedMerge length mismatch")
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i := range dst {
		dst[i] = 0
	}
	if total <= 0 {
		eq := 1.0 / float64(len(states))
		for _, st := range states {
			dst.AddScaled(st, eq)
		}
		return
	}
	for i, st := range states {
		dst.AddScaled(st, weights[i]/total)
	}
}

// MaxMerge returns the cell-wise maximum of the given states — the
// conservative alternative join evaluated by ablation A2.
func MaxMerge(states []State) State {
	if len(states) == 0 {
		return nil
	}
	out := make(State, len(states[0]))
	MaxMergeInto(out, states)
	return out
}

// MaxMergeInto is MaxMerge writing into dst, for hot loops that reuse
// the destination.
func MaxMergeInto(dst State, states []State) {
	dst.CopyFrom(states[0])
	for _, st := range states[1:] {
		for i, v := range st {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}
}
