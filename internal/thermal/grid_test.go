package thermal

import (
	"math"
	"math/rand"
	"testing"

	"thermflow/internal/power"
)

func newTestGrid(t *testing.T, w, h int) *Grid {
	t.Helper()
	g, err := NewGrid(w, h, power.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 8, power.Default65nm()); err == nil {
		t.Error("zero width accepted")
	}
	bad := power.Default65nm()
	bad.CycleTime = 0
	if _, err := NewGrid(8, 8, bad); err == nil {
		t.Error("invalid tech accepted")
	}
}

func TestNewStateAmbient(t *testing.T) {
	g := newTestGrid(t, 8, 8)
	s := g.NewState()
	if len(s) != 64 {
		t.Fatalf("state size = %d", len(s))
	}
	for i, v := range s {
		if v != g.TAmb {
			t.Fatalf("cell %d = %g, want ambient %g", i, v, g.TAmb)
		}
	}
}

func TestStepHeatsPoweredCell(t *testing.T) {
	g := newTestGrid(t, 4, 4)
	s := g.NewState()
	pow := make([]float64, 16)
	pow[5] = 1e-3 // 1 mW on an interior cell
	g.Step(s, pow, 1e-3)
	if s[5] <= g.TAmb {
		t.Fatalf("powered cell did not heat: %g", s[5])
	}
	// The powered cell must be the hottest.
	if s.ArgMax() != 5 {
		t.Errorf("hottest cell = %d, want 5", s.ArgMax())
	}
	// Neighbours must be warmer than far corners (diffusion).
	if s[4] <= s[15] {
		t.Errorf("neighbour (%g) not warmer than far corner (%g)", s[4], s[15])
	}
}

func TestStepCoolsTowardAmbient(t *testing.T) {
	g := newTestGrid(t, 4, 4)
	s := g.NewState()
	for i := range s {
		s[i] = g.TAmb + 20
	}
	g.Step(s, nil, 0.1) // long cooling, no power
	for i, v := range s {
		if math.Abs(v-g.TAmb) > 0.5 {
			t.Errorf("cell %d = %g, want ≈ ambient %g after cooling", i, v, g.TAmb)
		}
	}
}

func TestStepZeroDtNoop(t *testing.T) {
	g := newTestGrid(t, 2, 2)
	s := g.NewState()
	s[0] = 400
	before := s.Copy()
	g.Step(s, nil, 0)
	if s.MaxDelta(before) != 0 {
		t.Error("Step with dt=0 changed the state")
	}
}

func TestStepConvergesToSteadyState(t *testing.T) {
	g := newTestGrid(t, 4, 4)
	pow := make([]float64, 16)
	pow[0] = 5e-4
	pow[10] = 1e-3
	want := g.SteadyState(pow)
	s := g.NewState()
	// Integrate long enough (vertical time constant is ~17.5 ms).
	g.Step(s, pow, 0.5)
	if d := s.MaxDelta(want); d > 0.1 {
		t.Errorf("transient after 0.5 s deviates %g K from steady state", d)
	}
}

func TestSteadyStateEnergyBalance(t *testing.T) {
	g := newTestGrid(t, 4, 4)
	pow := make([]float64, 16)
	pow[3] = 2e-3
	s := g.SteadyState(pow)
	// Total vertical outflow must equal total input power.
	out := 0.0
	for _, v := range s {
		out += g.GVert * (v - g.TAmb)
	}
	if math.Abs(out-2e-3)/2e-3 > 1e-3 {
		t.Errorf("energy balance: outflow %g W, want 2e-3 W", out)
	}
}

func TestSteadyStateNoPower(t *testing.T) {
	g := newTestGrid(t, 3, 3)
	s := g.SteadyState(nil)
	for i, v := range s {
		if math.Abs(v-g.TAmb) > 1e-6 {
			t.Errorf("cell %d = %g, want ambient", i, v)
		}
	}
}

func TestSteadyStateSymmetry(t *testing.T) {
	g := newTestGrid(t, 5, 5)
	pow := make([]float64, 25)
	pow[12] = 1e-3 // centre
	s := g.SteadyState(pow)
	// 4-fold symmetry around the centre.
	pairs := [][2]int{{11, 13}, {7, 17}, {6, 8}, {0, 24}, {2, 22}}
	for _, p := range pairs {
		if math.Abs(s[p[0]]-s[p[1]]) > 1e-6 {
			t.Errorf("symmetry broken: cell %d = %g vs cell %d = %g",
				p[0], s[p[0]], p[1], s[p[1]])
		}
	}
}

func TestMaxStableStepPositive(t *testing.T) {
	g := newTestGrid(t, 8, 8)
	h := g.MaxStableStep()
	if h <= 0 {
		t.Fatalf("MaxStableStep = %g", h)
	}
	// Expected scale: C/(GVert+4GLat)/2 ≈ 4.4e-7/2.9e-4/2 ≈ 0.75 ms.
	if h < 1e-6 || h > 1e-2 {
		t.Errorf("MaxStableStep = %g s, expected sub-ms scale", h)
	}
}

// Stability: even with a huge requested dt the integrator must not
// oscillate or blow up.
func TestStepStableUnderLongDt(t *testing.T) {
	g := newTestGrid(t, 4, 4)
	s := g.NewState()
	pow := make([]float64, 16)
	pow[5] = 1e-3
	g.Step(s, pow, 0.05)
	for i, v := range s {
		if math.IsNaN(v) || v < g.TAmb-1 || v > g.TAmb+500 {
			t.Fatalf("cell %d diverged: %g", i, v)
		}
	}
}

func TestStateOps(t *testing.T) {
	s := State{1, 2, 3}
	c := s.Copy()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Copy aliases")
	}
	if d := s.MaxDelta(State{1, 5, 3}); d != 3 {
		t.Errorf("MaxDelta = %g", d)
	}
	if s.Max() != 3 || s.Min() != 1 {
		t.Error("Max/Min wrong")
	}
	if s.Mean() != 2 {
		t.Errorf("Mean = %g", s.Mean())
	}
	if s.ArgMax() != 2 {
		t.Errorf("ArgMax = %d", s.ArgMax())
	}
	if (State{}).Mean() != 0 {
		t.Error("empty Mean")
	}
	sc := State{1, 2}.Scale(2)
	if sc[0] != 2 || sc[1] != 4 {
		t.Error("Scale wrong")
	}
	as := State{1, 1}.AddScaled(State{2, 4}, 0.5)
	if as[0] != 2 || as[1] != 3 {
		t.Error("AddScaled wrong")
	}
}

func TestWeightedMerge(t *testing.T) {
	a := State{300, 310}
	b := State{310, 330}
	m := WeightedMerge([]State{a, b}, []float64{3, 1})
	if math.Abs(m[0]-302.5) > 1e-9 || math.Abs(m[1]-315) > 1e-9 {
		t.Errorf("WeightedMerge = %v", m)
	}
	// Zero weights degrade to unweighted average.
	m0 := WeightedMerge([]State{a, b}, []float64{0, 0})
	if math.Abs(m0[0]-305) > 1e-9 {
		t.Errorf("zero-weight merge = %v", m0)
	}
	if WeightedMerge(nil, nil) != nil {
		t.Error("empty merge should be nil")
	}
	// Single state passes through.
	one := WeightedMerge([]State{a}, []float64{2})
	if one.MaxDelta(a) != 0 {
		t.Error("single-state merge changed values")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	WeightedMerge([]State{a, b}, []float64{1})
}

func TestMaxMerge(t *testing.T) {
	a := State{300, 320}
	b := State{310, 305}
	m := MaxMerge([]State{a, b})
	if m[0] != 310 || m[1] != 320 {
		t.Errorf("MaxMerge = %v", m)
	}
	if MaxMerge(nil) != nil {
		t.Error("empty MaxMerge should be nil")
	}
}

// Property: a weighted merge never exceeds the cell-wise max merge nor
// undercuts the cell-wise minimum.
func TestMergeBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 8
		k := 2 + rng.Intn(3)
		states := make([]State, k)
		weights := make([]float64, k)
		for i := range states {
			st := make(State, n)
			for j := range st {
				st[j] = 300 + rng.Float64()*50
			}
			states[i] = st
			weights[i] = rng.Float64()
		}
		merged := WeightedMerge(states, weights)
		maxed := MaxMerge(states)
		for j := 0; j < n; j++ {
			min := math.Inf(1)
			for _, st := range states {
				if st[j] < min {
					min = st[j]
				}
			}
			if merged[j] > maxed[j]+1e-9 || merged[j] < min-1e-9 {
				t.Fatalf("trial %d cell %d: merge %g outside [%g,%g]",
					trial, j, merged[j], min, maxed[j])
			}
		}
	}
}

// Property: energy is monotone — more power in one cell can only raise
// steady-state temperatures everywhere.
func TestSteadyStateMonotoneInPower(t *testing.T) {
	g := newTestGrid(t, 4, 4)
	base := make([]float64, 16)
	base[5] = 5e-4
	s1 := g.SteadyState(base)
	base[5] = 1e-3
	s2 := g.SteadyState(base)
	for i := range s1 {
		if s2[i] < s1[i]-1e-9 {
			t.Fatalf("cell %d cooled when power increased: %g -> %g", i, s1[i], s2[i])
		}
	}
}
