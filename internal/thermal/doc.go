// Package thermal implements the RC-equivalent thermal model of the
// register file: a grid of cells, each with a heat capacity, a lateral
// conductance to its 4-connected neighbours and a vertical conductance
// to the ambient (HotSpot-style compact model, the same abstraction
// the paper's emulation framework [5] evaluates in hardware).
//
// The package provides a transient forward-Euler integrator with an
// automatic stability guard (Grid.Step / Grid.StepWith — the latter
// takes a caller-owned scratch buffer so steady-state solver waves
// allocate nothing), a steady-state solver (Grid.SteadyState), and
// the thermal-state vector operations the data-flow analysis needs
// (State.Copy, State.MaxDelta, WeightedMerge).
//
// A State is one temperature per cell, in kelvin. The data-flow
// analysis (internal/tdfa) treats States as its abstract facts: the
// transfer function integrates a power map over an instruction's time
// window, and the join operator merges predecessor States at
// control-flow joins.
package thermal
