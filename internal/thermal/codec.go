package thermal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file is the binary wire form of State: raw little-endian IEEE
// float64 cells, no framing. Framing (cell counts, versioning,
// checksums) belongs to the callers that embed states in larger
// records — tdfa's Result codec and the cachestore entry format — so
// a State costs exactly 8 bytes per cell on disk.

// AppendBinary appends the state's cells to b as little-endian float64
// bits and returns the extended slice.
func (s State) AppendBinary(b []byte) []byte {
	for _, v := range s {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// BinarySize returns the encoded size of a state with n cells.
func BinarySize(n int) int { return 8 * n }

// DecodeState reads an n-cell state from the front of b, returning the
// state and the remaining bytes. It fails (rather than panicking) on
// short input, so corrupted cache entries degrade into misses.
func DecodeState(b []byte, n int) (State, []byte, error) {
	if n < 0 {
		return nil, b, fmt.Errorf("thermal: negative cell count %d", n)
	}
	need := BinarySize(n)
	if len(b) < need {
		return nil, b, fmt.Errorf("thermal: truncated state: have %d bytes, need %d", len(b), need)
	}
	s := make(State, n)
	for i := range s {
		s[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return s, b[need:], nil
}
