package dfa

import (
	"testing"

	"thermflow/internal/cfg"
	"thermflow/internal/ir"
)

func mustParse(t *testing.T, src string) (*ir.Function, *cfg.Graph) {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f, cfg.Build(f)
}

const loopSrc = `
func loop(n) {
entry:
  i = const 0
  one = const 1
  br head
head:
  c = cmplt i, n
  cbr c, body, exit
body:
  t = add i, one
  i = mov t
  br head
exit:
  ret i
}`

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Error("Direction.String wrong")
	}
}

// A forward reachability analysis: fact = "block reached"; every block
// reachable from entry must come out true.
func TestRunForwardReachability(t *testing.T) {
	_, g := mustParse(t, loopSrc)
	spec := Spec[bool]{
		Dir:      Forward,
		Top:      func() bool { return false },
		Boundary: func() bool { return true },
		Meet:     func(dst, src bool) bool { return dst || src },
		Transfer: func(_ *ir.Block, in bool) bool { return in },
		Equal:    func(a, b bool) bool { return a == b },
	}
	res := Run(g, spec)
	for _, b := range g.RPO {
		if !res.In[b.Index] {
			t.Errorf("block %s not marked reachable", b.Name)
		}
	}
	if res.Iterations == 0 {
		t.Error("no iterations recorded")
	}
}

// Backward "can reach exit" analysis.
func TestRunBackward(t *testing.T) {
	f, g := mustParse(t, loopSrc)
	spec := Spec[bool]{
		Dir:      Backward,
		Top:      func() bool { return false },
		Boundary: func() bool { return true },
		Meet:     func(dst, src bool) bool { return dst || src },
		Transfer: func(_ *ir.Block, in bool) bool { return in },
		Equal:    func(a, b bool) bool { return a == b },
	}
	res := Run(g, spec)
	for _, b := range f.Blocks {
		if !res.Out[b.Index] {
			t.Errorf("block %s cannot reach exit", b.Name)
		}
	}
}

func TestSolveGenKillLiveness(t *testing.T) {
	// Hand-rolled liveness via SolveGenKill on the loop: value i must
	// be live around the loop.
	f, g := mustParse(t, loopSrc)
	nv := f.NumValues()
	nb := g.NumBlocks()
	p := &GenKill{Dir: Backward, NumFacts: nv,
		Gen: make([]*BitSet, nb), Kill: make([]*BitSet, nb)}
	for _, b := range f.Blocks {
		gen := NewBitSet(nv)
		kill := NewBitSet(nv)
		for _, in := range b.Instrs {
			for _, u := range in.Uses {
				if !kill.Get(u.ID) {
					gen.Set(u.ID)
				}
			}
			if in.Def != nil {
				kill.Set(in.Def.ID)
			}
		}
		p.Gen[b.Index] = gen
		p.Kill[b.Index] = kill
	}
	res := SolveGenKill(g, p)
	i := f.ValueNamed("i")
	head := f.BlockNamed("head")
	body := f.BlockNamed("body")
	// Backward: In = live-out, Out = live-in.
	if !res.Out[head.Index].Get(i.ID) {
		t.Error("i not live into head")
	}
	if !res.In[body.Index].Get(i.ID) {
		t.Error("i not live out of body")
	}
	n := f.ValueNamed("n")
	if !res.Out[head.Index].Get(n.ID) {
		t.Error("n not live into head")
	}
	exit := f.BlockNamed("exit")
	if !res.In[exit.Index].Empty() {
		t.Errorf("live-out of exit should be empty, got %s", res.In[exit.Index])
	}
}

// The solver must terminate even for a non-monotone Transfer thanks to
// the per-block visit cap.
func TestRunNonMonotoneTerminates(t *testing.T) {
	_, g := mustParse(t, loopSrc)
	flip := 0
	spec := Spec[int]{
		Dir:      Forward,
		Top:      func() int { return 0 },
		Boundary: func() int { return 1 },
		Meet:     func(dst, src int) int { return dst + src },
		Transfer: func(_ *ir.Block, in int) int {
			flip++
			return in + flip%3 // deliberately unstable
		},
		Equal: func(a, b int) bool { return a == b },
	}
	res := Run(g, spec) // must return despite instability
	if res == nil {
		t.Fatal("nil result")
	}
}
