package dfa

import (
	"thermflow/internal/cfg"
	"thermflow/internal/ir"
)

// Direction selects the propagation direction of an analysis.
type Direction int

// Analysis directions.
const (
	Forward Direction = iota
	Backward
)

// String names the direction.
func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// Spec describes a monotone data-flow problem over fact type T. The
// solver treats T as opaque: Top produces the initial interior fact,
// Boundary the fact entering the CFG (at the entry for forward
// problems, at every exit for backward ones), Meet combines facts at
// control-flow merges (mutating and returning dst), Transfer applies a
// block, and Equal detects the fixpoint.
type Spec[T any] struct {
	Dir      Direction
	Top      func() T
	Boundary func() T
	Meet     func(dst, src T) T
	Transfer func(b *ir.Block, in T) T
	Equal    func(a, b T) bool
}

// Result holds per-block facts at block boundaries: for a forward
// problem In is the fact before the block and Out after it; for a
// backward problem In is the fact at block exit and Out at block entry
// (i.e. both are indexed "in the direction of flow").
type Result[T any] struct {
	In  []T
	Out []T
	// Iterations is the number of block visits performed.
	Iterations int
}

// maxVisitsPerBlock caps solver work to guard against non-monotone
// specs; the classic analyses converge in a handful of passes.
const maxVisitsPerBlock = 1000

// Run solves the data-flow problem to fixpoint with a worklist seeded
// in reverse postorder (forward) or postorder (backward) and returns
// the per-block facts.
func Run[T any](g *cfg.Graph, s Spec[T]) *Result[T] {
	n := g.NumBlocks()
	res := &Result[T]{In: make([]T, n), Out: make([]T, n)}
	for _, b := range g.Fn.Blocks {
		res.In[b.Index] = s.Top()
		res.Out[b.Index] = s.Top()
	}

	// order lists blocks in propagation order; flowPreds returns the
	// flow-predecessors of a block (CFG preds for forward, succs for
	// backward); flowSuccs the inverse.
	var order []*ir.Block
	if s.Dir == Forward {
		order = g.RPO
	} else {
		order = make([]*ir.Block, len(g.RPO))
		for i, b := range g.RPO {
			order[len(g.RPO)-1-i] = b
		}
	}
	flowPreds := func(b *ir.Block) []*ir.Block {
		if s.Dir == Forward {
			return g.Preds[b.Index]
		}
		return b.Succs()
	}
	isBoundary := func(b *ir.Block) bool {
		if s.Dir == Forward {
			return b == g.Fn.Entry
		}
		return len(b.Succs()) == 0
	}

	// Precompute flow successors (who to re-enqueue when a block's out
	// fact changes).
	flowSuccs := make([][]*ir.Block, n)
	for _, q := range order {
		for _, p := range flowPreds(q) {
			flowSuccs[p.Index] = append(flowSuccs[p.Index], q)
		}
	}

	inWork := make([]bool, n)
	visits := make([]int, n)
	var work []*ir.Block
	for _, b := range order {
		work = append(work, b)
		inWork[b.Index] = true
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		visits[b.Index]++
		res.Iterations++
		if visits[b.Index] > maxVisitsPerBlock {
			continue
		}

		in := s.Top()
		if isBoundary(b) {
			in = s.Meet(in, s.Boundary())
		}
		for _, p := range flowPreds(b) {
			if !g.Reachable(p) {
				continue
			}
			in = s.Meet(in, res.Out[p.Index])
		}
		res.In[b.Index] = in
		out := s.Transfer(b, in)
		if s.Equal(out, res.Out[b.Index]) {
			continue
		}
		res.Out[b.Index] = out
		for _, q := range flowSuccs[b.Index] {
			if !inWork[q.Index] {
				work = append(work, q)
				inWork[q.Index] = true
			}
		}
	}
	return res
}

// GenKill is the classic bit-vector problem: Out = Gen ∪ (In − Kill)
// for forward problems, and symmetrically for backward ones. Gen and
// Kill are indexed by block index; NumFacts is the bit-vector width.
type GenKill struct {
	Dir      Direction
	NumFacts int
	Gen      []*BitSet
	Kill     []*BitSet
}

// SolveGenKill runs the gen/kill problem with union meet (a "may"
// analysis) and empty boundary facts.
func SolveGenKill(g *cfg.Graph, p *GenKill) *Result[*BitSet] {
	spec := Spec[*BitSet]{
		Dir:      p.Dir,
		Top:      func() *BitSet { return NewBitSet(p.NumFacts) },
		Boundary: func() *BitSet { return NewBitSet(p.NumFacts) },
		Meet: func(dst, src *BitSet) *BitSet {
			dst.UnionWith(src)
			return dst
		},
		Transfer: func(b *ir.Block, in *BitSet) *BitSet {
			out := in.Copy()
			out.DiffWith(p.Kill[b.Index])
			out.UnionWith(p.Gen[b.Index])
			return out
		},
		Equal: func(a, b *BitSet) bool { return a.Equal(b) },
	}
	return Run(g, spec)
}
