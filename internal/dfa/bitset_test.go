package dfa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 63, 64, 65, 129} {
		s.Set(i)
		if !s.Get(i) {
			t.Errorf("Get(%d) false after Set", i)
		}
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d, want 5", s.Count())
	}
	s.Clear(64)
	if s.Get(64) {
		t.Error("Get(64) true after Clear")
	}
	if got := s.Slice(); !reflect.DeepEqual(got, []int{0, 63, 65, 129}) {
		t.Errorf("Slice = %v", got)
	}
	s.Reset()
	if !s.Empty() {
		t.Error("not empty after Reset")
	}
}

func TestBitSetOutOfRange(t *testing.T) {
	s := NewBitSet(10)
	for _, f := range []func(){
		func() { s.Set(10) },
		func() { s.Set(-1) },
		func() { s.Get(10) },
		func() { s.Clear(64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestBitSetOps(t *testing.T) {
	a := NewBitSet(100)
	b := NewBitSet(100)
	for _, i := range []int{1, 2, 3, 70} {
		a.Set(i)
	}
	for _, i := range []int{3, 4, 70, 99} {
		b.Set(i)
	}
	u := a.Copy()
	if !u.UnionWith(b) {
		t.Error("UnionWith should report change")
	}
	if !reflect.DeepEqual(u.Slice(), []int{1, 2, 3, 4, 70, 99}) {
		t.Errorf("union = %v", u.Slice())
	}
	if u.UnionWith(b) {
		t.Error("second UnionWith should be a no-op")
	}

	i := a.Copy()
	i.IntersectWith(b)
	if !reflect.DeepEqual(i.Slice(), []int{3, 70}) {
		t.Errorf("intersection = %v", i.Slice())
	}

	d := a.Copy()
	d.DiffWith(b)
	if !reflect.DeepEqual(d.Slice(), []int{1, 2}) {
		t.Errorf("difference = %v", d.Slice())
	}

	if !a.Equal(a.Copy()) {
		t.Error("copy must be Equal")
	}
	if a.Equal(b) {
		t.Error("different sets reported Equal")
	}
	if a.Equal(NewBitSet(101)) {
		t.Error("different capacities reported Equal")
	}
}

func TestBitSetCopyFrom(t *testing.T) {
	a := NewBitSet(10)
	a.Set(3)
	b := NewBitSet(10)
	b.CopyFrom(a)
	if !b.Get(3) {
		t.Error("CopyFrom lost bit")
	}
	a.Set(4)
	if b.Get(4) {
		t.Error("CopyFrom aliases source")
	}
	defer func() {
		if recover() == nil {
			t.Error("CopyFrom capacity mismatch did not panic")
		}
	}()
	b.CopyFrom(NewBitSet(11))
}

func TestBitSetMismatchPanics(t *testing.T) {
	a := NewBitSet(10)
	b := NewBitSet(20)
	for name, f := range map[string]func(){
		"union":     func() { a.UnionWith(b) },
		"intersect": func() { a.IntersectWith(b) },
		"diff":      func() { a.DiffWith(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched capacity did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBitSetString(t *testing.T) {
	s := NewBitSet(10)
	if s.String() != "{}" {
		t.Errorf("empty String = %q", s.String())
	}
	s.Set(1)
	s.Set(5)
	if s.String() != "{1, 5}" {
		t.Errorf("String = %q", s.String())
	}
}

// Property: union is commutative, associative and idempotent; De
// Morgan-ish relations between diff and intersect hold.
func TestBitSetProperties(t *testing.T) {
	const n = 128
	gen := func(r *rand.Rand) *BitSet {
		s := NewBitSet(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 1 {
				s.Set(i)
			}
		}
		return s
	}
	cfgQuick := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(gen(r))
			}
		},
	}
	commutative := func(a, b *BitSet) bool {
		ab := a.Copy()
		ab.UnionWith(b)
		ba := b.Copy()
		ba.UnionWith(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(commutative, cfgQuick); err != nil {
		t.Errorf("union not commutative: %v", err)
	}
	associative := func(a, b, c *BitSet) bool {
		l := a.Copy()
		l.UnionWith(b)
		l.UnionWith(c)
		bc := b.Copy()
		bc.UnionWith(c)
		r := a.Copy()
		r.UnionWith(bc)
		return l.Equal(r)
	}
	if err := quick.Check(associative, cfgQuick); err != nil {
		t.Errorf("union not associative: %v", err)
	}
	idempotent := func(a *BitSet) bool {
		b := a.Copy()
		if b.UnionWith(a) {
			return false
		}
		return b.Equal(a)
	}
	if err := quick.Check(idempotent, cfgQuick); err != nil {
		t.Errorf("union not idempotent: %v", err)
	}
	diffIntersectDisjoint := func(a, b *BitSet) bool {
		d := a.Copy()
		d.DiffWith(b)
		i := d.Copy()
		i.IntersectWith(b)
		return i.Empty()
	}
	if err := quick.Check(diffIntersectDisjoint, cfgQuick); err != nil {
		t.Errorf("diff/intersect property failed: %v", err)
	}
	countsAdd := func(a, b *BitSet) bool {
		d := a.Copy()
		d.DiffWith(b)
		i := a.Copy()
		i.IntersectWith(b)
		return d.Count()+i.Count() == a.Count()
	}
	if err := quick.Check(countsAdd, cfgQuick); err != nil {
		t.Errorf("count decomposition failed: %v", err)
	}
}
