// Package dfa provides the generic data-flow machinery shared by the
// classic analyses (liveness, reaching definitions, bitwidth) and, in
// spirit, by the thermal analysis: a dense bit set and a worklist
// fixpoint solver parameterized over the fact type.
//
// The paper (§3) frames its contribution against exactly this
// machinery: "liveness analysis [needs] a single bit of information per
// variable", "bitwidth analysis ... propagates an interval", and the
// proposed thermal analysis "must propagate a floorplan-aware estimate
// of the thermal state", i.e. a vector of temperatures. All three fact
// shapes run on the same solver.
package dfa

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitSet is a fixed-capacity dense bit set. The zero value is an empty
// set of capacity 0; use NewBitSet for a working set.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns an empty set able to hold bits [0, n).
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set (number of addressable bits).
func (s *BitSet) Len() int { return s.n }

func (s *BitSet) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("dfa: bit %d out of range [0,%d)", i, s.n))
	}
}

// Set adds bit i to the set.
func (s *BitSet) Set(i int) {
	s.check(i)
	s.words[i/64] |= 1 << (uint(i) % 64)
}

// Clear removes bit i from the set.
func (s *BitSet) Clear(i int) {
	s.check(i)
	s.words[i/64] &^= 1 << (uint(i) % 64)
}

// Get reports whether bit i is in the set.
func (s *BitSet) Get(i int) bool {
	s.check(i)
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Reset removes every bit.
func (s *BitSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Copy returns an independent copy of the set.
func (s *BitSet) Copy() *BitSet {
	c := &BitSet{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites the set with the contents of src (same capacity).
func (s *BitSet) CopyFrom(src *BitSet) {
	if s.n != src.n {
		panic("dfa: CopyFrom capacity mismatch")
	}
	copy(s.words, src.words)
}

// UnionWith adds every bit of t to s and reports whether s changed.
func (s *BitSet) UnionWith(t *BitSet) bool {
	if s.n != t.n {
		panic("dfa: UnionWith capacity mismatch")
	}
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith keeps only bits present in both sets and reports
// whether s changed.
func (s *BitSet) IntersectWith(t *BitSet) bool {
	if s.n != t.n {
		panic("dfa: IntersectWith capacity mismatch")
	}
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old & w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// DiffWith removes every bit of t from s and reports whether s changed.
func (s *BitSet) DiffWith(t *BitSet) bool {
	if s.n != t.n {
		panic("dfa: DiffWith capacity mismatch")
	}
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old &^ w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Equal reports whether two sets hold exactly the same bits.
func (s *BitSet) Equal(t *BitSet) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Count returns the number of bits in the set.
func (s *BitSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no bits.
func (s *BitSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every bit in the set, in ascending order.
func (s *BitSet) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Slice returns the members in ascending order.
func (s *BitSet) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{1, 5, 9}".
func (s *BitSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
		first = false
	})
	b.WriteByte('}')
	return b.String()
}
