package interference

import (
	"testing"

	"thermflow/internal/analysis"
	"thermflow/internal/cfg"
	"thermflow/internal/ir"
)

func buildIG(t *testing.T, src string) (*ir.Function, *Graph) {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g := cfg.Build(f)
	lv := analysis.ComputeLiveness(g)
	return f, Build(g, lv)
}

func TestStraightLineInterference(t *testing.T) {
	src := `
func f() {
entry:
  a = const 1
  b = const 2
  c = add a, b
  d = add a, c
  ret d
}`
	f, ig := buildIG(t, src)
	id := func(name string) int { return f.ValueNamed(name).ID }
	// a and b overlap (both live at c's def).
	if !ig.Interferes(id("a"), id("b")) {
		t.Error("a and b must interfere")
	}
	// a and c overlap (both live at d's def).
	if !ig.Interferes(id("a"), id("c")) {
		t.Error("a and c must interfere")
	}
	// b dies at c's def: b and c must NOT interfere... b is used BY the
	// add that defines c, so b's live range ends exactly where c's
	// starts: no interference.
	if ig.Interferes(id("b"), id("c")) {
		t.Error("b and c must not interfere (b dies at c's definition)")
	}
	// d overlaps nothing afterwards.
	if ig.Interferes(id("d"), id("a")) {
		t.Error("d and a must not interfere")
	}
	if ig.Interferes(id("a"), id("a")) {
		t.Error("self-interference must be false")
	}
}

func TestMovNoInterference(t *testing.T) {
	src := `
func f() {
entry:
  a = const 1
  b = mov a
  c = add b, b
  ret c
}`
	f, ig := buildIG(t, src)
	id := func(name string) int { return f.ValueNamed(name).ID }
	// Move destination and source may share a register even though a is
	// (conservatively) live at the mov.
	if ig.Interferes(id("a"), id("b")) {
		t.Error("mov src and dst must not interfere")
	}
}

func TestMovStillInterferesWhenSrcLivesOn(t *testing.T) {
	src := `
func f() {
entry:
  a = const 1
  b = mov a
  c = add a, b
  ret c
}`
	f, ig := buildIG(t, src)
	id := func(name string) int { return f.ValueNamed(name).ID }
	// a is used after the mov, so a and b genuinely coexist; the
	// move-exemption applies only at the copy itself. They interfere
	// through c's def point... b is live at c's def? b dies at c. a
	// dies at c too. But b's def happens while a is live AND a is used
	// later — the def-point rule at the mov is exempted, yet no other
	// def point sees both live. This is the known conservative gap of
	// the mov exemption; the allocator tolerates it because a shared
	// register would still be correct only if values are equal — which
	// they are (b == a).
	_ = f
	_ = id
	// Document current behaviour: no interference edge.
	if ig.Interferes(id("a"), id("b")) {
		t.Skip("stricter interference than expected (acceptable)")
	}
}

func TestLoopInterference(t *testing.T) {
	src := `
func f(n) {
entry:
  i = const 0
  one = const 1
  sum = const 0
  br head
head:
  c = cmplt i, n
  cbr c, body, exit
body:
  s2 = add sum, i
  sum = mov s2
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret sum
}`
	f, ig := buildIG(t, src)
	id := func(name string) int { return f.ValueNamed(name).ID }
	// Loop-carried values all coexist.
	for _, a := range []string{"i", "one", "sum", "n"} {
		for _, b := range []string{"i", "one", "sum", "n"} {
			if a == b {
				continue
			}
			if !ig.Interferes(id(a), id(b)) {
				t.Errorf("%s and %s must interfere (both live through loop)", a, b)
			}
		}
	}
	if ig.Degree(id("i")) < 3 {
		t.Errorf("degree(i) = %d, want >= 3", ig.Degree(id("i")))
	}
	if ig.MaxDegree() < 4 {
		t.Errorf("MaxDegree = %d, want >= 4", ig.MaxDegree())
	}
}

func TestParamsInterfere(t *testing.T) {
	src := `
func f(p, q) {
entry:
  s = add p, q
  ret s
}`
	f, ig := buildIG(t, src)
	id := func(name string) int { return f.ValueNamed(name).ID }
	if !ig.Interferes(id("p"), id("q")) {
		t.Error("parameters must interfere pairwise")
	}
	if !ig.NeedsRegister(id("p")) || !ig.NeedsRegister(id("s")) {
		t.Error("NeedsRegister wrong")
	}
}

func TestNodesAndNeighbors(t *testing.T) {
	src := `
func f() {
entry:
  a = const 1
  b = const 2
  c = add a, b
  ret c
}`
	f, ig := buildIG(t, src)
	nodes := ig.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("Nodes = %v, want 3 entries", nodes)
	}
	a := f.ValueNamed("a").ID
	nb := ig.Neighbors(a)
	if len(nb) == 0 {
		t.Error("a must have neighbours")
	}
	count := 0
	ig.ForEachNeighbor(a, func(int) { count++ })
	if count != len(nb) {
		t.Errorf("ForEachNeighbor visited %d, Neighbors returned %d", count, len(nb))
	}
	if ig.NumValues() != f.NumValues() {
		t.Error("NumValues mismatch")
	}
}

func TestAddEdgeSelfNoop(t *testing.T) {
	_, ig := buildIG(t, `
func f() {
entry:
  a = const 1
  ret a
}`)
	ig.AddEdge(0, 0)
	if ig.Degree(0) != 0 {
		t.Error("self edge recorded")
	}
}

// Property: interference is symmetric.
func TestInterferenceSymmetric(t *testing.T) {
	src := `
func f(n) {
entry:
  i = const 0
  one = const 1
  sum = const 0
  br head
head:
  c = cmplt i, n
  cbr c, body, exit
body:
  s2 = add sum, i
  sum = mov s2
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret sum
}`
	f, ig := buildIG(t, src)
	n := f.NumValues()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if ig.Interferes(a, b) != ig.Interferes(b, a) {
				t.Fatalf("asymmetric interference between %d and %d", a, b)
			}
		}
	}
}
