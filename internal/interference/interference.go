// Package interference builds the interference graph over virtual
// registers: "two variables interfere in a program if their lifetimes
// overlap" (paper §2). The register allocator colours this graph; the
// assignment policy decides which physical register each colour maps
// to — the lever the paper's Fig. 1 pulls.
package interference

import (
	"thermflow/internal/analysis"
	"thermflow/internal/cfg"
	"thermflow/internal/dfa"
	"thermflow/internal/ir"
)

// Graph is an undirected interference graph over value IDs.
type Graph struct {
	n   int
	adj []*dfa.BitSet
	// needsReg marks values that appear in the function (as def, use or
	// parameter) and therefore need a register.
	needsReg *dfa.BitSet
}

// Build constructs the interference graph from liveness information.
// The classic rule applies: at each definition point the defined value
// interferes with every value live after the instruction, except that a
// move's destination does not interfere with its source (they may
// share).
func Build(g *cfg.Graph, lv *analysis.Liveness) *Graph {
	fn := g.Fn
	n := fn.NumValues()
	ig := &Graph{
		n:        n,
		adj:      make([]*dfa.BitSet, n),
		needsReg: dfa.NewBitSet(n),
	}
	for i := range ig.adj {
		ig.adj[i] = dfa.NewBitSet(n)
	}
	for _, p := range fn.Params {
		ig.needsReg.Set(p.ID)
	}
	// Parameters are all live on entry together: they interfere
	// pairwise (each occupies a register from the start).
	for i, p := range fn.Params {
		for _, q := range fn.Params[i+1:] {
			ig.AddEdge(p.ID, q.ID)
		}
	}
	for _, b := range fn.Blocks {
		live := lv.LiveOut[b.Index].Copy()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if in.Def != nil {
				ig.needsReg.Set(in.Def.ID)
				def := in.Def.ID
				live.ForEach(func(v int) {
					if v == def {
						return
					}
					if in.Op == ir.Mov && in.Uses[0].ID == v {
						return // move src/dst may share a register
					}
					ig.AddEdge(def, v)
				})
				live.Clear(def)
			}
			for _, u := range in.Uses {
				ig.needsReg.Set(u.ID)
				live.Set(u.ID)
			}
		}
		// Values live into the entry (parameters) interfere with each
		// other and with defs above; pairwise liveness at block
		// boundaries is covered by the def-point rule as every live
		// value was defined somewhere.
	}
	return ig
}

// AddEdge records that values a and b interfere.
func (ig *Graph) AddEdge(a, b int) {
	if a == b {
		return
	}
	ig.adj[a].Set(b)
	ig.adj[b].Set(a)
}

// Interferes reports whether values a and b interfere.
func (ig *Graph) Interferes(a, b int) bool {
	return a != b && ig.adj[a].Get(b)
}

// Degree returns the number of neighbours of value v.
func (ig *Graph) Degree(v int) int { return ig.adj[v].Count() }

// Neighbors returns the IDs interfering with v, ascending.
func (ig *Graph) Neighbors(v int) []int { return ig.adj[v].Slice() }

// ForEachNeighbor calls fn for every neighbour of v.
func (ig *Graph) ForEachNeighbor(v int, fn func(int)) { ig.adj[v].ForEach(fn) }

// NeedsRegister reports whether value id appears in the function and
// therefore requires a physical register.
func (ig *Graph) NeedsRegister(id int) bool { return ig.needsReg.Get(id) }

// Nodes returns the IDs of all values needing registers, ascending.
func (ig *Graph) Nodes() []int { return ig.needsReg.Slice() }

// NumValues returns the capacity of the graph (function value count).
func (ig *Graph) NumValues() int { return ig.n }

// MaxDegree returns the largest degree over nodes needing registers.
func (ig *Graph) MaxDegree() int {
	max := 0
	ig.needsReg.ForEach(func(v int) {
		if d := ig.Degree(v); d > max {
			max = d
		}
	})
	return max
}
