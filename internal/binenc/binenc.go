// Package binenc is the little-endian binary record vocabulary shared
// by the result codecs (internal/tdfa's Result codec and the root
// package's Compiled codec): varint-prefixed strings, float64 bits,
// and a bounds-checked sticky-error Reader whose first failure poisons
// every later read. Decoders built on it fail on corrupt input — they
// never panic and never allocate proportionally to a lying length
// field — which is what lets the cache layer treat "does not decode"
// as a plain miss.
package binenc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendBool appends v as one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendF64 appends v as little-endian IEEE float64 bits.
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendString appends v with an unsigned-varint length prefix.
func AppendString(b []byte, v string) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendBytes appends v with an unsigned-varint length prefix.
func AppendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// Reader is a bounds-checked cursor over an encoded record. The first
// failure sticks: every later read returns a zero value, and Err
// reports the original cause.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{b: data} }

// Err returns the sticky error, or nil.
func (r *Reader) Err() error { return r.err }

// Rest returns the unread remainder (for trailing sub-records with
// their own codec).
func (r *Reader) Rest() []byte { return r.b }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) }

// Fail records err (formatted) as the sticky failure if none is set.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 2 {
		r.Fail("truncated u16")
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.Fail("truncated byte")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// Bool reads a Byte and requires it to be 0 or 1.
func (r *Reader) Bool() bool {
	v := r.Byte()
	if r.err == nil && v > 1 {
		r.Fail("bad bool byte %d", v)
		return false
	}
	return v == 1
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.Fail("truncated uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.Fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Count reads an unsigned varint that must be plausible as an element
// count for the remaining input (at least one byte per element), so a
// corrupt length cannot become an allocation bomb. Use Uvarint for
// scalar integers that bound nothing.
func (r *Reader) Count() int {
	v := r.Uvarint()
	if r.err == nil && v > uint64(len(r.b))+1 {
		r.Fail("count %d exceeds remaining %d bytes", v, len(r.b))
		return 0
	}
	return int(v)
}

// F64 reads little-endian IEEE float64 bits.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.Fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

// F64s reads a Count-prefixed float64 slice (nil when empty).
func (r *Reader) F64s() []float64 {
	n := r.Count()
	if r.err != nil || n == 0 {
		return nil
	}
	if 8*n > len(r.b) {
		r.Fail("truncated float slice: %d elements, %d bytes left", n, len(r.b))
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Bytes reads a Count-prefixed byte field, aliasing the input.
func (r *Reader) Bytes() []byte {
	n := r.Count()
	if r.err != nil {
		return nil
	}
	if n > len(r.b) {
		r.Fail("truncated field: %d bytes, %d left", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// Str reads a Count-prefixed string.
func (r *Reader) Str() string { return string(r.Bytes()) }

// Raw reads exactly n unprefixed bytes (for fixed-size sub-records),
// aliasing the input.
func (r *Reader) Raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.Fail("truncated raw field: %d bytes, %d left", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}
