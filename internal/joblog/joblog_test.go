package joblog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh dir recovered %+v, want empty", rec)
	}
	want := []Record{
		{Type: 1, Payload: []byte(`{"id":"a"}`)},
		{Type: 2, Payload: []byte{}},
		{Type: 3, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for _, r := range want {
		if err := l.Append(r.Type, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for i, r := range rec2.Records {
		if r.Type != want[i].Type || !bytes.Equal(r.Payload, want[i].Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	if rec2.DroppedBytes != 0 || rec2.DroppedSnapshot {
		t.Fatalf("clean log reported drops: %+v", rec2)
	}
}

func TestTornTailDiscardedNotFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(1, fmt.Appendf(nil, "rec-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Tear the last record: chop bytes off the tail, as a crash
	// mid-write would.
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o666); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	if len(rec.Records) != 4 {
		t.Fatalf("recovered %d records past a torn tail, want 4", len(rec.Records))
	}
	if rec.DroppedBytes == 0 {
		t.Fatalf("torn tail not reported in DroppedBytes")
	}
	// The log must be appendable after truncating the tear, and the
	// new record must replay.
	if err := l2.Append(2, []byte("after-tear")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, rec3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Records) != 5 || rec3.Records[4].Type != 2 {
		t.Fatalf("post-tear append did not replay: %+v", rec3.Records)
	}
}

func TestCorruptMiddleCutsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(1, fmt.Appendf(nil, "rec-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, walName)
	data, _ := os.ReadFile(path)
	// Flip a payload bit in the second record; the first must survive,
	// the rest is untrusted.
	data[fileHeaderLen+recHeaderLen+5+recHeaderLen+2] ^= 0x01
	os.WriteFile(path, data, 0o666)

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "rec-0" {
		t.Fatalf("corrupt middle: recovered %+v, want only rec-0", rec.Records)
	}
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Append(1, fmt.Appendf(nil, "pre-%d", i))
	}
	if err := l.Snapshot([]byte("state-v1")); err != nil {
		t.Fatal(err)
	}
	if n := l.Records(); n != 0 {
		t.Fatalf("Records() = %d after snapshot, want 0", n)
	}
	l.Append(2, []byte("post-0"))
	l.Append(2, []byte("post-1"))
	l.Close()

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "state-v1" {
		t.Fatalf("snapshot payload = %q, want state-v1", rec.Snapshot)
	}
	if len(rec.Records) != 2 || string(rec.Records[0].Payload) != "post-0" {
		t.Fatalf("post-snapshot records = %+v, want the 2 appended after", rec.Records)
	}
}

func TestCorruptSnapshotReported(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Snapshot([]byte("good"))
	l.Append(1, []byte("after"))
	l.Close()
	path := filepath.Join(dir, snapName)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o666)

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("corrupt snapshot must not be fatal: %v", err)
	}
	if rec.Snapshot != nil || !rec.DroppedSnapshot {
		t.Fatalf("corrupt snapshot not dropped: %+v", rec)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("wal records lost with the snapshot: %+v", rec.Records)
	}
}

func TestSyncBatching(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Un-synced appends are still in the file (page cache durability is
	// the OS's problem; process-crash durability is ours).
	l.Append(1, []byte("unsynced"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := parseRecords(data)
	if err != nil || len(recs) != 1 {
		t.Fatalf("parse after sync: %v, %d records", err, len(recs))
	}
}
