package joblog

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// walFile frames payloads the way Log.Append does, so fuzz seeds
// include structurally valid logs alongside garbage.
func walFile(payloads ...[]byte) []byte {
	var b bytes.Buffer
	b.WriteString(fileMagic)
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], formatVersion)
	b.Write(v[:])
	for i, p := range payloads {
		b.WriteString(recordMagic)
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(i+1))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(p))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(p)))
		b.Write(hdr[:])
		b.Write(p)
	}
	return b.Bytes()
}

// FuzzJoblogRecover writes arbitrary bytes as a WAL file and opens
// the log over it. Whatever the bytes — torn tails, bit flips, hostile
// length fields — Open must not panic, must account for every byte it
// discards, and must leave a log that accepts appends and recovers
// them on a second Open.
func FuzzJoblogRecover(f *testing.F) {
	f.Add([]byte{})
	f.Add(walFile())
	f.Add(walFile([]byte("hello"), []byte("world")))
	f.Add(walFile([]byte("torn"))[:20]) // mid-record truncation
	if w := walFile([]byte("flip")); len(w) > 24 {
		w[24] ^= 0x40 // corrupt the payload under an intact CRC
		f.Add(w)
	}
	f.Add([]byte("TFJL\x01\x00\x00\x00TFJR\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff")) // absurd length field
	f.Add(bytes.Repeat([]byte{0xa5}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), data, 0o666); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir, Options{})
		if err != nil {
			return // refusing the file is fine; panicking is not
		}
		headerOK := len(data) >= fileHeaderLen &&
			string(data[:4]) == fileMagic &&
			binary.LittleEndian.Uint32(data[4:8]) == formatVersion
		var recovered int64
		if headerOK {
			recovered = fileHeaderLen
		}
		for _, r := range rec.Records {
			if r.Type == 0 {
				t.Fatalf("recovered record with reserved type 0")
			}
			recovered += recHeaderLen + int64(len(r.Payload))
		}
		if !headerOK && len(rec.Records) != 0 {
			t.Fatalf("recovered %d records from a file with an invalid header", len(rec.Records))
		}
		if rec.DroppedBytes < 0 {
			t.Fatalf("negative DroppedBytes %d", rec.DroppedBytes)
		}
		if got := recovered + rec.DroppedBytes; got != int64(len(data)) {
			t.Fatalf("byte accounting: %d recovered + %d dropped != %d total",
				recovered, rec.DroppedBytes, len(data))
		}

		// The truncated log must keep working: append, close, reopen,
		// and the new record is the recovery's tail.
		if err := l.Append(7, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		l2, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer l2.Close()
		if rec2.DroppedBytes != 0 {
			t.Fatalf("reopen dropped %d bytes from a cleanly-closed log", rec2.DroppedBytes)
		}
		if n := len(rec2.Records); n != len(rec.Records)+1 {
			t.Fatalf("reopen found %d records, want %d", n, len(rec.Records)+1)
		}
		last := rec2.Records[len(rec2.Records)-1]
		if last.Type != 7 || string(last.Payload) != "post-recovery" {
			t.Fatalf("appended record came back as type %d payload %q", last.Type, last.Payload)
		}
	})
}
