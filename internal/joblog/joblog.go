// Package joblog is the durable backbone of the job plane: a
// per-process write-ahead log of small typed records plus a periodic
// snapshot, so state that today lives only in memory — a backend's job
// registry, its replica shelf, a gateway's drain decisions — survives
// kill -9 and comes back on the next Open.
//
// The layout mirrors the cachestore disk tier's TFCS framing: every
// record travels under a magic, a CRC-32 of its payload and an explicit
// length, so a torn tail (the one write in flight when the process
// died) is detected, discarded and truncated away — never fatal, never
// trusted. A log owns one directory holding two files:
//
//	wal.tfj       the append-only record log
//	snapshot.tfj  the latest snapshot (one framed record, atomically
//	              rename-written)
//
// Recovery is snapshot + suffix: Open returns the snapshot payload (if
// any) and every record appended after the snapshot was taken, in
// order. Callers rebuild state by applying the records to the
// snapshot, then typically call Snapshot with the rebuilt state to
// compact the directory.
//
// Appends are fsync-batched: the data reaches the file on every
// Append, but fsync runs once per SyncEvery records (and on Sync,
// Snapshot and Close), so sustained submit traffic pays one disk flush
// per batch instead of one per job. A crash between fsyncs can lose at
// most the last batch of records — the torn-tail rule above makes that
// loss clean.
package joblog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// File framing. Each file starts with a 8-byte header (magic +
// format version); each record is:
//
//	offset 0  magic "TFJR"
//	       4  u32 LE record type (caller-defined, non-zero)
//	       8  u32 LE CRC-32 (IEEE) of the payload
//	      12  u32 LE payload length
//	      16  payload
const (
	fileMagic     = "TFJL"
	recordMagic   = "TFJR"
	formatVersion = 1
	fileHeaderLen = 8
	recHeaderLen  = 16

	walName  = "wal.tfj"
	snapName = "snapshot.tfj"
	tmpName  = "snapshot.tfj.tmp"
)

// maxRecordBytes rejects absurd lengths before allocating: a corrupt
// length field must not become an allocation bomb.
const maxRecordBytes = 1 << 28

// DefaultSyncEvery is the fsync batch size when Options leaves it zero.
const DefaultSyncEvery = 16

// Options parameterizes Open.
type Options struct {
	// SyncEvery batches fsyncs: the WAL file is synced after this many
	// appended records (<= 0 selects DefaultSyncEvery; 1 syncs every
	// append). Sync, Snapshot and Close always flush.
	SyncEvery int
}

// Record is one replayed WAL entry.
type Record struct {
	// Type is the caller-defined record type (always non-zero).
	Type uint32
	// Payload is the record body, exactly as appended.
	Payload []byte
}

// Recovery is what Open found on disk.
type Recovery struct {
	// Snapshot is the latest snapshot payload, nil when none exists
	// (or the snapshot file failed validation — see DroppedSnapshot).
	Snapshot []byte
	// Records are the WAL entries appended after the snapshot, oldest
	// first. A torn or corrupt tail has already been cut off.
	Records []Record
	// DroppedBytes counts WAL bytes discarded as torn or corrupt;
	// DroppedSnapshot reports a snapshot file that failed validation.
	DroppedBytes    int64
	DroppedSnapshot bool
}

// Empty reports a recovery with nothing to replay.
func (r Recovery) Empty() bool { return r.Snapshot == nil && len(r.Records) == 0 }

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	dir       string
	syncEvery int

	mu      sync.Mutex
	wal     *os.File
	pending int // appends since the last fsync
	records int // appends since Open or the last Snapshot
	bytes   int64
	closed  bool
}

// Open creates (if needed) the log directory, recovers its contents
// and opens the WAL for appending. The returned Recovery is the
// caller's to replay; the Log is positioned after the last valid
// record (a torn tail has been truncated away).
func Open(dir string, opts Options) (*Log, Recovery, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, Recovery{}, fmt.Errorf("joblog: creating %s: %w", dir, err)
	}
	_ = os.Remove(filepath.Join(dir, tmpName)) // interrupted snapshot write

	var rec Recovery
	snap, err := os.ReadFile(filepath.Join(dir, snapName))
	switch {
	case err == nil:
		payload, _, perr := parseRecords(snap)
		if perr != nil || len(payload) != 1 {
			rec.DroppedSnapshot = true
		} else {
			rec.Snapshot = payload[0].Payload
		}
	case !errors.Is(err, os.ErrNotExist):
		return nil, Recovery{}, fmt.Errorf("joblog: reading snapshot: %w", err)
	}

	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, Recovery{}, fmt.Errorf("joblog: reading wal: %w", err)
	}
	records, good, _ := parseRecords(data)
	rec.Records = records
	rec.DroppedBytes = int64(len(data)) - good

	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("joblog: opening wal: %w", err)
	}
	l := &Log{dir: dir, syncEvery: opts.SyncEvery, wal: wal, records: len(records)}
	if good == 0 {
		// Fresh (or fully torn) file: start from a clean header.
		if err := l.rewriteHeader(); err != nil {
			wal.Close()
			return nil, Recovery{}, err
		}
	} else {
		if err := wal.Truncate(good); err != nil {
			wal.Close()
			return nil, Recovery{}, fmt.Errorf("joblog: truncating torn tail: %w", err)
		}
		if _, err := wal.Seek(good, io.SeekStart); err != nil {
			wal.Close()
			return nil, Recovery{}, fmt.Errorf("joblog: seeking wal: %w", err)
		}
		l.bytes = good
	}
	return l, rec, nil
}

// parseRecords walks framed records after the file header, returning
// the valid prefix's records and its byte length. Any framing, length
// or checksum failure stops the walk: everything before it is good,
// everything after is the torn tail.
func parseRecords(data []byte) ([]Record, int64, error) {
	if len(data) < fileHeaderLen {
		return nil, 0, fmt.Errorf("joblog: missing file header")
	}
	if string(data[:4]) != fileMagic {
		return nil, 0, fmt.Errorf("joblog: bad file magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != formatVersion {
		return nil, 0, fmt.Errorf("joblog: file format version %d, want %d", v, formatVersion)
	}
	var out []Record
	off := int64(fileHeaderLen)
	for {
		rest := data[off:]
		if len(rest) < recHeaderLen {
			return out, off, nil
		}
		if string(rest[:4]) != recordMagic {
			return out, off, nil
		}
		typ := binary.LittleEndian.Uint32(rest[4:8])
		wantCRC := binary.LittleEndian.Uint32(rest[8:12])
		plen := binary.LittleEndian.Uint32(rest[12:16])
		if typ == 0 || plen > maxRecordBytes || int64(len(rest)) < recHeaderLen+int64(plen) {
			return out, off, nil
		}
		payload := rest[recHeaderLen : recHeaderLen+int64(plen)]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return out, off, nil
		}
		out = append(out, Record{Type: typ, Payload: append([]byte(nil), payload...)})
		off += recHeaderLen + int64(plen)
	}
}

// frame renders one record's bytes.
func frame(typ uint32, payload []byte) []byte {
	buf := make([]byte, 0, recHeaderLen+len(payload))
	buf = append(buf, recordMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, typ)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

func fileHeader() []byte {
	buf := make([]byte, 0, fileHeaderLen)
	buf = append(buf, fileMagic...)
	return binary.LittleEndian.AppendUint32(buf, formatVersion)
}

// rewriteHeader resets the WAL to an empty, headered file. Callers
// hold l.mu (or the log is not yet shared).
func (l *Log) rewriteHeader() error {
	if err := l.wal.Truncate(0); err != nil {
		return fmt.Errorf("joblog: resetting wal: %w", err)
	}
	if _, err := l.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("joblog: resetting wal: %w", err)
	}
	if _, err := l.wal.Write(fileHeader()); err != nil {
		return fmt.Errorf("joblog: writing wal header: %w", err)
	}
	l.bytes = fileHeaderLen
	l.pending = 0
	return nil
}

// Append writes one record to the WAL. The write reaches the file
// immediately; fsync is batched per Options.SyncEvery. typ must be
// non-zero (zero marks a torn record on replay).
func (l *Log) Append(typ uint32, payload []byte) error {
	if typ == 0 {
		return fmt.Errorf("joblog: record type must be non-zero")
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("joblog: record payload of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("joblog: log is closed")
	}
	n, err := l.wal.Write(frame(typ, payload))
	l.bytes += int64(n)
	if err != nil {
		return fmt.Errorf("joblog: appending record: %w", err)
	}
	l.records++
	l.pending++
	if l.pending >= l.syncEvery {
		l.pending = 0
		if err := l.wal.Sync(); err != nil {
			return fmt.Errorf("joblog: syncing wal: %w", err)
		}
	}
	return nil
}

// Sync flushes any batched appends to stable storage now.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.pending == 0 {
		return nil
	}
	l.pending = 0
	if err := l.wal.Sync(); err != nil {
		return fmt.Errorf("joblog: syncing wal: %w", err)
	}
	return nil
}

// Records reports appends since Open or the last Snapshot — the
// caller's cadence signal for snapshot-and-truncate.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Snapshot atomically replaces the snapshot with payload and truncates
// the WAL: the snapshot is written to a temporary name, fsynced and
// renamed into place before the log is cut, so a crash at any point
// leaves either the old snapshot + full log or the new snapshot +
// empty log — never less than one complete state.
func (l *Log) Snapshot(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("joblog: log is closed")
	}
	tmp := filepath.Join(l.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("joblog: writing snapshot: %w", err)
	}
	_, werr := f.Write(append(fileHeader(), frame(1, payload)...))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("joblog: writing snapshot: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("joblog: installing snapshot: %w", err)
	}
	if err := l.rewriteHeader(); err != nil {
		return err
	}
	l.records = 0
	return l.wal.Sync()
}

// Close flushes and closes the WAL. Further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	serr := l.wal.Sync()
	cerr := l.wal.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
