package ir

import (
	"errors"
	"fmt"
	"strings"
)

// Module is a set of functions that may call each other. The paper
// scopes its analysis to "a single procedure"; modules are lowered to
// that form by inlining (opt.Inline) before analysis.
type Module struct {
	// Funcs lists the functions in definition order.
	Funcs []*Function

	byName map[string]*Function
}

// NewModule builds a module from functions with unique names.
func NewModule(fns ...*Function) (*Module, error) {
	m := &Module{byName: make(map[string]*Function, len(fns))}
	for _, f := range fns {
		if f.Name == "" {
			return nil, errors.New("ir: module function without a name")
		}
		if m.byName[f.Name] != nil {
			return nil, fmt.Errorf("ir: duplicate function %q", f.Name)
		}
		m.Funcs = append(m.Funcs, f)
		m.byName[f.Name] = f
	}
	return m, nil
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Function { return m.byName[name] }

// Verify checks every function, resolves every call (existence and
// arity) and rejects recursion — the inliner requires an acyclic call
// graph.
func (m *Module) Verify() error {
	var errs []error
	for _, f := range m.Funcs {
		if err := Verify(f); err != nil {
			errs = append(errs, err)
		}
		f.ForEachInstr(func(_ *Block, in *Instr) {
			if in.Op != Call {
				return
			}
			callee := m.byName[in.Callee]
			if callee == nil {
				errs = append(errs, fmt.Errorf("ir: %s calls unknown function %q", f.Name, in.Callee))
				return
			}
			if len(in.Uses) != len(callee.Params) {
				errs = append(errs, fmt.Errorf("ir: %s calls %s with %d arguments, want %d",
					f.Name, in.Callee, len(in.Uses), len(callee.Params)))
			}
		})
	}
	if err := m.checkAcyclic(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// checkAcyclic rejects call-graph cycles via depth-first colouring.
func (m *Module) checkAcyclic() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[string]int, len(m.Funcs))
	var visit func(f *Function, path []string) error
	visit = func(f *Function, path []string) error {
		colour[f.Name] = grey
		var err error
		f.ForEachInstr(func(_ *Block, in *Instr) {
			if err != nil || in.Op != Call {
				return
			}
			callee := m.byName[in.Callee]
			if callee == nil {
				return // reported by Verify
			}
			switch colour[callee.Name] {
			case grey:
				err = fmt.Errorf("ir: recursive call cycle: %s -> %s",
					strings.Join(append(path, f.Name), " -> "), callee.Name)
			case white:
				err = visit(callee, append(path, f.Name))
			}
		})
		colour[f.Name] = black
		return err
	}
	for _, f := range m.Funcs {
		if colour[f.Name] == white {
			if err := visit(f, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// String prints every function.
func (m *Module) String() string {
	var b strings.Builder
	for i, f := range m.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(Print(f))
	}
	return b.String()
}

// ParseModule reads several functions from one source text and verifies
// the resulting module.
func ParseModule(src string) (*Module, error) {
	var fns []*Function
	lines := strings.Split(src, "\n")
	start := -1
	flush := func(end int) error {
		if start < 0 {
			return nil
		}
		fn, err := Parse(strings.Join(lines[start:end], "\n"))
		if err != nil {
			return err
		}
		fns = append(fns, fn)
		start = -1
		return nil
	}
	for i, raw := range lines {
		line := stripComment(raw)
		if strings.HasPrefix(line, "func ") {
			if err := flush(i); err != nil {
				return nil, err
			}
			start = i
		}
	}
	if err := flush(len(lines)); err != nil {
		return nil, err
	}
	if len(fns) == 0 {
		return nil, errors.New("ir: no functions in module source")
	}
	m, err := NewModule(fns...)
	if err != nil {
		return nil, err
	}
	if err := m.Verify(); err != nil {
		return nil, err
	}
	return m, nil
}
