package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a function in the textual syntax emitted by Print.
//
// Grammar (line oriented, '#' starts a comment):
//
//	func <name>(<param>, ...) {
//	<label>: [!trip <n>]
//	  [<value> =] <op> <operands>
//	  ...
//	}
//
// Values are created on first mention; block labels may be referenced
// before their definition. The parsed function is verified before being
// returned.
func Parse(src string) (*Function, error) {
	p := &parser{}
	if err := p.run(src); err != nil {
		return nil, err
	}
	if err := Verify(p.fn); err != nil {
		return nil, fmt.Errorf("ir: parsed function is ill-formed: %w", err)
	}
	p.fn.Renumber()
	return p.fn, nil
}

type parser struct {
	fn   *Function
	cur  *Block
	line int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) error {
	lines := strings.Split(src, "\n")
	// First pass: find the header and create all labelled blocks so
	// branches can forward-reference them.
	headerAt := -1
	for i, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "func ") {
			headerAt = i
			if err := p.parseHeader(line, i+1); err != nil {
				return err
			}
			break
		}
		return fmt.Errorf("ir: line %d: expected 'func', got %q", i+1, line)
	}
	if headerAt < 0 {
		return fmt.Errorf("ir: no function header found")
	}
	for i := headerAt + 1; i < len(lines); i++ {
		line := stripComment(lines[i])
		if label, _, ok := splitLabel(line); ok {
			if p.fn.blockNamed(label) == nil {
				p.fn.NewBlock(label)
			}
		}
	}
	// Second pass: parse labels and instructions.
	closed := false
	for i := headerAt + 1; i < len(lines); i++ {
		p.line = i + 1
		line := stripComment(lines[i])
		if line == "" {
			continue
		}
		if line == "}" {
			closed = true
			continue
		}
		if closed {
			return p.errf("content after closing '}': %q", line)
		}
		if label, rest, ok := splitLabel(line); ok {
			p.cur = p.fn.blockNamed(label)
			if rest != "" {
				if err := p.parseBlockAttr(rest); err != nil {
					return err
				}
			}
			continue
		}
		if p.cur == nil {
			return p.errf("instruction before any block label: %q", line)
		}
		if err := p.parseInstr(line); err != nil {
			return err
		}
	}
	if !closed {
		return fmt.Errorf("ir: missing closing '}'")
	}
	return nil
}

func stripComment(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// splitLabel recognizes "label:" or "label: attrs" lines. A line is a
// label only if the colon terminates the first whitespace-free token;
// this keeps instruction lines (which contain spaces before any colon)
// unambiguous.
func splitLabel(line string) (label, rest string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return "", "", false
	}
	head := line[:i]
	if strings.ContainsAny(head, " \t=,") {
		return "", "", false
	}
	return head, strings.TrimSpace(line[i+1:]), true
}

func (p *parser) parseHeader(line string, lineNo int) error {
	p.line = lineNo
	rest := strings.TrimPrefix(line, "func ")
	open := strings.IndexByte(rest, '(')
	closeP := strings.IndexByte(rest, ')')
	if open < 0 || closeP < open {
		return p.errf("malformed function header %q", line)
	}
	name := strings.TrimSpace(rest[:open])
	if name == "" {
		return p.errf("function name missing")
	}
	if !strings.HasSuffix(strings.TrimSpace(rest[closeP+1:]), "{") {
		return p.errf("function header must end with '{'")
	}
	p.fn = NewFunc(name)
	params := strings.TrimSpace(rest[open+1 : closeP])
	if params != "" {
		for _, pn := range strings.Split(params, ",") {
			pn = strings.TrimSpace(pn)
			if pn == "" {
				return p.errf("empty parameter name")
			}
			p.fn.NewParam(pn)
		}
	}
	return nil
}

func (p *parser) parseBlockAttr(rest string) error {
	fields := strings.Fields(rest)
	for i := 0; i < len(fields); i++ {
		switch fields[i] {
		case "!trip":
			if i+1 >= len(fields) {
				return p.errf("!trip requires a count")
			}
			n, err := strconv.Atoi(fields[i+1])
			if err != nil || n < 0 {
				return p.errf("bad !trip count %q", fields[i+1])
			}
			p.fn.TripCount[p.cur.Name] = n
			i++
		default:
			return p.errf("unknown block attribute %q", fields[i])
		}
	}
	return nil
}

func (p *parser) parseInstr(line string) error {
	// "name = op ..." — '=' appears in no other position of the syntax,
	// so the first '=' (if any) separates the destination.
	var defName string
	if i := strings.IndexByte(line, '='); i >= 0 {
		left := strings.TrimSpace(line[:i])
		if left == "" || strings.ContainsAny(left, " \t,") {
			return p.errf("malformed destination in %q", line)
		}
		defName = left
		line = strings.TrimSpace(line[i+1:])
	}
	fields := strings.Fields(strings.ReplaceAll(line, ",", " , "))
	if len(fields) == 0 {
		return p.errf("empty instruction")
	}
	op, ok := OpByName(fields[0])
	if !ok {
		return p.errf("unknown opcode %q", fields[0])
	}
	var operands []string
	expectComma := false
	for _, fTok := range fields[1:] {
		if fTok == "," {
			if !expectComma {
				return p.errf("unexpected comma")
			}
			expectComma = false
			continue
		}
		if expectComma {
			return p.errf("missing comma before %q", fTok)
		}
		operands = append(operands, fTok)
		expectComma = true
	}

	var def *Value
	if op.HasDef() {
		if defName == "" {
			return p.errf("%s requires a destination", op)
		}
		def = p.valueFor(defName)
	} else if defName != "" {
		return p.errf("%s does not define a value", op)
	}

	var uses []*Value
	var imm int64
	var targets []*Block
	consume := func() (string, error) {
		if len(operands) == 0 {
			return "", p.errf("%s: missing operand", op)
		}
		tok := operands[0]
		operands = operands[1:]
		return tok, nil
	}
	useOperand := func() error {
		tok, err := consume()
		if err != nil {
			return err
		}
		uses = append(uses, p.valueFor(tok))
		return nil
	}
	immOperand := func() error {
		tok, err := consume()
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return p.errf("%s: bad immediate %q", op, tok)
		}
		imm = n
		return nil
	}
	targetOperand := func() error {
		tok, err := consume()
		if err != nil {
			return err
		}
		b := p.fn.blockNamed(tok)
		if b == nil {
			b = p.fn.NewBlock(tok)
		}
		targets = append(targets, b)
		return nil
	}

	var callee string
	var err error
	switch op {
	case Call:
		tok, cerr := consume()
		if cerr != nil {
			return cerr
		}
		callee = tok
		for len(operands) > 0 && err == nil {
			err = useOperand()
		}
	case Const:
		err = immOperand()
	case Load:
		if err = useOperand(); err == nil {
			err = immOperand()
		}
	case Store:
		if err = useOperand(); err == nil {
			if err = useOperand(); err == nil {
				err = immOperand()
			}
		}
	case Br:
		err = targetOperand()
	case CondBr:
		if err = useOperand(); err == nil {
			if err = targetOperand(); err == nil {
				err = targetOperand()
			}
		}
	case Ret:
		if len(operands) > 0 {
			err = useOperand()
		}
	default:
		for i := 0; i < op.NumUses() && err == nil; i++ {
			err = useOperand()
		}
	}
	if err != nil {
		return err
	}
	if len(operands) != 0 {
		return p.errf("%s: %d extra operand(s)", op, len(operands))
	}
	in := &Instr{Op: op, Def: def, Uses: uses, Imm: imm, Targets: targets, Callee: callee}
	if err := in.checkShape(); err != nil {
		return p.errf("%v", err)
	}
	p.cur.Append(in)
	return nil
}

func (p *parser) valueFor(name string) *Value {
	if v := p.fn.ValueNamed(name); v != nil {
		return v
	}
	return p.fn.NewValue(name)
}
