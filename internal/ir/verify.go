package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural well-formedness of a function:
//
//   - the function has an entry block and at least one block;
//   - every block is non-empty and ends in exactly one terminator,
//     which is its only terminator;
//   - branch targets belong to the function;
//   - operand shapes match opcodes;
//   - every used value is either a parameter or defined by some
//     instruction of the function (a conservative def-before-use check
//     that does not require dominance);
//   - all blocks are reachable from the entry.
//
// It returns an error joining every violation found.
func Verify(f *Function) error {
	var errs []error
	if f.Entry == nil {
		errs = append(errs, errors.New("ir: function has no entry block"))
	}
	if len(f.Blocks) == 0 {
		errs = append(errs, errors.New("ir: function has no blocks"))
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	defined := make(map[*Value]bool, len(f.values))
	for _, p := range f.Params {
		defined[p] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			errs = append(errs, fmt.Errorf("ir: block %s is empty", b.Name))
			continue
		}
		for i, in := range b.Instrs {
			if err := in.checkShape(); err != nil {
				errs = append(errs, fmt.Errorf("ir: block %s instr %d: %w", b.Name, i, err))
			}
			if in.block != b {
				errs = append(errs, fmt.Errorf("ir: block %s instr %d (%s) has wrong parent link", b.Name, i, in))
			}
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				errs = append(errs, fmt.Errorf("ir: block %s has terminator %q before its end", b.Name, in))
			}
			for _, t := range in.Targets {
				if !inFunc[t] {
					errs = append(errs, fmt.Errorf("ir: block %s branches to foreign block %s", b.Name, t.Name))
				}
			}
			if in.Def != nil {
				defined[in.Def] = true
			}
		}
		if b.Terminator() == nil {
			errs = append(errs, fmt.Errorf("ir: block %s does not end in a terminator", b.Name))
		}
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			for _, u := range in.Uses {
				if !defined[u] {
					errs = append(errs, fmt.Errorf("ir: block %s instr %d uses %s which is never defined", b.Name, i, u.Name))
				}
			}
		}
	}
	if f.Entry != nil {
		reached := make(map[*Block]bool, len(f.Blocks))
		var stack []*Block
		stack = append(stack, f.Entry)
		reached[f.Entry] = true
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range b.Succs() {
				if !reached[s] {
					reached[s] = true
					stack = append(stack, s)
				}
			}
		}
		for _, b := range f.Blocks {
			if !reached[b] {
				errs = append(errs, fmt.Errorf("ir: block %s is unreachable from entry", b.Name))
			}
		}
	}
	return errors.Join(errs...)
}
