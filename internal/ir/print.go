package ir

import (
	"fmt"
	"strings"
)

// Print renders the function in the textual IR syntax accepted by
// Parse:
//
//	func name(p0, p1) {
//	entry:
//	  v0 = const 4
//	  cbr v0, body, exit
//	...
//	}
func Print(f *Function) string {
	var b strings.Builder
	b.WriteString("func ")
	b.WriteString(f.Name)
	b.WriteByte('(')
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Name)
	}
	b.WriteString(") {\n")
	for _, blk := range f.Blocks {
		b.WriteString(blk.Name)
		b.WriteString(":")
		if n, ok := f.TripCount[blk.Name]; ok {
			fmt.Fprintf(&b, " !trip %d", n)
		}
		b.WriteByte('\n')
		for _, in := range blk.Instrs {
			b.WriteString("  ")
			b.WriteString(in.String())
			b.WriteByte('\n')
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String implements fmt.Stringer for Function using Print.
func (f *Function) String() string { return Print(f) }
