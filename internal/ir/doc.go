// Package ir defines a small three-address intermediate representation
// used throughout thermflow: virtual-register values, instructions,
// basic blocks and functions, together with a builder, a textual
// printer/parser and a structural verifier.
//
// The IR is deliberately close to the abstraction level at which the
// DAC'09 paper operates: instructions read and write virtual registers
// (variables), control flow is explicit (every block ends in exactly
// one terminator), and there is no SSA form — register allocation maps
// the virtual registers of this IR directly onto physical registers of
// the modelled register file.
//
// Key entry points:
//
//   - Parse / ParseModule read the textual syntax (String prints it);
//     the syntax round-trips, which is what the batch engine's
//     content-keyed result cache hashes.
//   - NewFunction / Function.NewBlock / Function.NewValue build IR
//     programmatically (the workload generator's path).
//   - Verify checks structural invariants (single terminator, def
//     before use, acyclic call graphs at the module level) and runs
//     after every transform that rewrites a function.
//   - Function.Clone deep-copies before mutation; the allocator's
//     spill rewriting and the optimizer work on clones so callers'
//     functions are never modified in place.
//
// A Function is safe for concurrent read-only use once numbered
// (Function.Numbered); the batch engine relies on this to compile the
// same program under many option sets in parallel.
package ir
