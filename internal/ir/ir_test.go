package ir

import (
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		Nop: "nop", Const: "const", Mov: "mov", Add: "add", Sub: "sub",
		Mul: "mul", Div: "div", Rem: "rem", And: "and", Or: "or",
		Xor: "xor", Shl: "shl", Shr: "shr", Neg: "neg", Not: "not",
		CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLE: "cmple",
		CmpGT: "cmpgt", CmpGE: "cmpge", Load: "load", Store: "store",
		Br: "br", CondBr: "cbr", Ret: "ret",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
		back, ok := OpByName(want)
		if !ok || back != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v, true", want, back, ok, op)
		}
	}
}

func TestOpByNameUnknown(t *testing.T) {
	if _, ok := OpByName("bogus"); ok {
		t.Fatal("OpByName(bogus) succeeded")
	}
}

func TestOpProperties(t *testing.T) {
	if !Br.IsTerminator() || !CondBr.IsTerminator() || !Ret.IsTerminator() {
		t.Error("branch/ret must be terminators")
	}
	if Add.IsTerminator() {
		t.Error("add must not be a terminator")
	}
	if !Add.HasDef() || Store.HasDef() || Br.HasDef() {
		t.Error("HasDef wrong for add/store/br")
	}
	if !Const.HasImm() || !Load.HasImm() || !Store.HasImm() || Add.HasImm() {
		t.Error("HasImm wrong")
	}
	if !Add.IsCommutative() || Sub.IsCommutative() || CmpLT.IsCommutative() {
		t.Error("IsCommutative wrong")
	}
	if !CmpEQ.IsCompare() || !CmpGE.IsCompare() || Add.IsCompare() {
		t.Error("IsCompare wrong")
	}
	if !Load.IsMemory() || !Store.IsMemory() || Mov.IsMemory() {
		t.Error("IsMemory wrong")
	}
	if Mul.DefaultLatency() <= Add.DefaultLatency() {
		t.Error("mul should be slower than add")
	}
	if Div.DefaultLatency() <= Mul.DefaultLatency() {
		t.Error("div should be slower than mul")
	}
}

func TestOpUseCounts(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		n := op.NumUses()
		if n < 0 || n > 2 {
			t.Errorf("%s.NumUses() = %d out of range", op, n)
		}
	}
	if Add.NumUses() != 2 || Mov.NumUses() != 1 || Const.NumUses() != 0 {
		t.Error("NumUses wrong for add/mov/const")
	}
}

func buildSimpleLoop(t *testing.T) *Function {
	t.Helper()
	f := NewFunc("loopy")
	n := f.NewParam("n")
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	b := NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	sum := b.ConstNamed("sum", 0)
	one := b.ConstNamed("one", 1)
	b.Br(head)
	b.SetBlock(head)
	c := b.CmpLT(i, n)
	b.CondBr(c, body, exit)
	b.SetBlock(body)
	b.MovTo(sum, b.Add(sum, i))
	b.MovTo(i, b.Add(i, one))
	b.Br(head)
	b.SetBlock(exit)
	b.RetVal(sum)
	f.Renumber()
	if err := Verify(f); err != nil {
		t.Fatalf("Verify(loopy) = %v", err)
	}
	return f
}

func TestBuilderLoop(t *testing.T) {
	f := buildSimpleLoop(t)
	if f.Entry == nil || f.Entry.Name != "entry" {
		t.Fatalf("entry block = %v", f.Entry)
	}
	if got := len(f.Blocks); got != 4 {
		t.Fatalf("len(Blocks) = %d, want 4", got)
	}
	// entry: 3 consts + br; head: cmp + cbr; body: add, mov, add, mov,
	// br; exit: ret.
	if f.NumInstrs() != 12 {
		t.Errorf("NumInstrs = %d, want 12", f.NumInstrs())
	}
	head := f.BlockNamed("head")
	succs := head.Succs()
	if len(succs) != 2 || succs[0].Name != "body" || succs[1].Name != "exit" {
		t.Errorf("head.Succs() = %v", succs)
	}
	preds := f.Preds()
	if got := len(preds[head.Index]); got != 2 {
		t.Errorf("head has %d preds, want 2 (entry + body)", got)
	}
}

func TestRenumberDense(t *testing.T) {
	f := buildSimpleLoop(t)
	seen := make(map[int]bool)
	f.ForEachInstr(func(_ *Block, in *Instr) {
		if seen[in.ID] {
			t.Errorf("duplicate instr ID %d", in.ID)
		}
		seen[in.ID] = true
	})
	for i := 0; i < f.NumInstrs(); i++ {
		if !seen[i] {
			t.Errorf("instr ID %d missing", i)
		}
	}
	instrs := f.Instrs()
	if len(instrs) != f.NumInstrs() {
		t.Fatalf("Instrs() returned %d, want %d", len(instrs), f.NumInstrs())
	}
	for i, in := range instrs {
		if in.ID != i {
			t.Errorf("Instrs()[%d].ID = %d", i, in.ID)
		}
	}
}

func TestValueNaming(t *testing.T) {
	f := NewFunc("f")
	a := f.NewValue("")
	bv := f.NewValue("")
	if a.Name == bv.Name {
		t.Errorf("auto names collide: %s", a.Name)
	}
	c := f.NewValue("x")
	d := f.NewValue("x")
	if c.Name == d.Name {
		t.Errorf("explicit duplicate names not uniquified: %s vs %s", c.Name, d.Name)
	}
	if f.ValueNamed("x") != c {
		t.Error("ValueNamed(x) should return first x")
	}
	if f.ValueNamed("nope") != nil {
		t.Error("ValueNamed(nope) should be nil")
	}
	if got := f.NumValues(); got != 4 {
		t.Errorf("NumValues = %d, want 4", got)
	}
	for i, v := range f.Values() {
		if v.ID != i {
			t.Errorf("Values()[%d].ID = %d", i, v.ID)
		}
	}
}

func TestBlockNaming(t *testing.T) {
	f := NewFunc("f")
	b1 := f.NewBlock("")
	b2 := f.NewBlock("")
	if b1.Name == b2.Name {
		t.Error("auto block names collide")
	}
	b3 := f.NewBlock("loop")
	b4 := f.NewBlock("loop")
	if b3.Name == b4.Name {
		t.Error("duplicate block names not uniquified")
	}
	if f.Entry != b1 {
		t.Error("first block must become entry")
	}
}

func TestInstrShapeErrors(t *testing.T) {
	f := NewFunc("f")
	v := f.NewValue("v")
	w := f.NewValue("w")
	blk := f.NewBlock("b")
	cases := []struct {
		name    string
		op      Op
		def     *Value
		uses    []*Value
		targets []*Block
	}{
		{"add with one use", Add, v, []*Value{w}, nil},
		{"add without def", Add, nil, []*Value{v, w}, nil},
		{"store with def", Store, v, []*Value{v, w}, nil},
		{"br without target", Br, nil, nil, nil},
		{"cbr with one target", CondBr, nil, []*Value{v}, []*Block{blk}},
		{"ret with two uses", Ret, nil, []*Value{v, w}, nil},
		{"nil use", Mov, v, []*Value{nil}, nil},
		{"const with def missing", Const, nil, nil, nil},
	}
	for _, tc := range cases {
		if _, err := NewInstr(tc.op, tc.def, tc.uses, 0, tc.targets...); err == nil {
			t.Errorf("%s: NewInstr succeeded, want error", tc.name)
		}
	}
}

func TestInstrString(t *testing.T) {
	f := buildSimpleLoop(t)
	var texts []string
	f.ForEachInstr(func(_ *Block, in *Instr) { texts = append(texts, in.String()) })
	joined := strings.Join(texts, "\n")
	for _, want := range []string{
		"i = const 0",
		"cbr", "body, exit",
		"ret sum",
		"br head",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("instruction dump missing %q:\n%s", want, joined)
		}
	}
}

func TestAccessedValues(t *testing.T) {
	f := NewFunc("f")
	blk := f.NewBlock("b")
	b := NewBuilder(f, blk)
	x := b.Const(1)
	y := b.Const(2)
	z := b.Add(x, y)
	b.RetVal(z)
	add := blk.Instrs[2]
	av := add.AccessedValues()
	if len(av) != 3 || av[0] != x || av[1] != y || av[2] != z {
		t.Errorf("AccessedValues = %v", av)
	}
	ret := blk.Instrs[3]
	if got := ret.AccessedValues(); len(got) != 1 || got[0] != z {
		t.Errorf("ret AccessedValues = %v", got)
	}
}

func TestReplaceUse(t *testing.T) {
	f := NewFunc("f")
	blk := f.NewBlock("b")
	b := NewBuilder(f, blk)
	x := b.Const(1)
	sum := b.Add(x, x)
	y := f.NewValue("y")
	add := blk.Instrs[1]
	if n := add.ReplaceUse(x, y); n != 2 {
		t.Errorf("ReplaceUse replaced %d, want 2", n)
	}
	if add.Uses[0] != y || add.Uses[1] != y {
		t.Error("uses not replaced")
	}
	if n := add.ReplaceUse(x, y); n != 0 {
		t.Errorf("second ReplaceUse replaced %d, want 0", n)
	}
	_ = sum
}

func TestInsertRemove(t *testing.T) {
	f := NewFunc("f")
	blk := f.NewBlock("b")
	b := NewBuilder(f, blk)
	b.Const(1)
	b.Ret()
	nop, err := NewInstr(Nop, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	blk.InsertAt(1, nop)
	if blk.Instrs[1] != nop || nop.Block() != blk {
		t.Fatal("InsertAt failed")
	}
	if blk.NumInstrs() != 3 {
		t.Fatalf("NumInstrs = %d", blk.NumInstrs())
	}
	got := blk.RemoveAt(1)
	if got != nop || nop.Block() != nil || blk.NumInstrs() != 2 {
		t.Fatal("RemoveAt failed")
	}
}

func TestInsertAtPanics(t *testing.T) {
	f := NewFunc("f")
	blk := f.NewBlock("b")
	nop, _ := NewInstr(Nop, nil, nil, 0)
	defer func() {
		if recover() == nil {
			t.Error("InsertAt out of range did not panic")
		}
	}()
	blk.InsertAt(5, nop)
}

func TestVerifyCatches(t *testing.T) {
	t.Run("empty function", func(t *testing.T) {
		if err := Verify(NewFunc("f")); err == nil {
			t.Error("want error for empty function")
		}
	})
	t.Run("empty block", func(t *testing.T) {
		f := NewFunc("f")
		f.NewBlock("b")
		if err := Verify(f); err == nil {
			t.Error("want error for empty block")
		}
	})
	t.Run("missing terminator", func(t *testing.T) {
		f := NewFunc("f")
		blk := f.NewBlock("b")
		NewBuilder(f, blk).Const(1)
		if err := Verify(f); err == nil {
			t.Error("want error for missing terminator")
		}
	})
	t.Run("terminator mid-block", func(t *testing.T) {
		f := NewFunc("f")
		blk := f.NewBlock("b")
		b := NewBuilder(f, blk)
		b.Ret()
		b.Nop()
		b.Ret()
		if err := Verify(f); err == nil {
			t.Error("want error for mid-block terminator")
		}
	})
	t.Run("undefined use", func(t *testing.T) {
		f := NewFunc("f")
		blk := f.NewBlock("b")
		ghost := f.NewValue("ghost")
		b := NewBuilder(f, blk)
		b.RetVal(ghost)
		if err := Verify(f); err == nil {
			t.Error("want error for undefined use")
		}
	})
	t.Run("param use ok", func(t *testing.T) {
		f := NewFunc("f")
		p := f.NewParam("p")
		blk := f.NewBlock("b")
		NewBuilder(f, blk).RetVal(p)
		if err := Verify(f); err != nil {
			t.Errorf("param use flagged: %v", err)
		}
	})
	t.Run("foreign target", func(t *testing.T) {
		f := NewFunc("f")
		g := NewFunc("g")
		foreign := g.NewBlock("far")
		NewBuilder(g, foreign).Ret()
		blk := f.NewBlock("b")
		in, err := NewInstr(Br, nil, nil, 0, foreign)
		if err != nil {
			t.Fatal(err)
		}
		blk.Append(in)
		if err := Verify(f); err == nil {
			t.Error("want error for foreign branch target")
		}
	})
	t.Run("unreachable block", func(t *testing.T) {
		f := NewFunc("f")
		blk := f.NewBlock("b")
		NewBuilder(f, blk).Ret()
		orphan := f.NewBlock("orphan")
		NewBuilder(f, orphan).Ret()
		if err := Verify(f); err == nil {
			t.Error("want error for unreachable block")
		}
	})
}

func TestPrintParseRoundTrip(t *testing.T) {
	f := buildSimpleLoop(t)
	f.TripCount["head"] = 42
	text := Print(f)
	g, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(Print(f)) error: %v\n%s", err, text)
	}
	text2 := Print(g)
	if text != text2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s--- second ---\n%s", text, text2)
	}
	if g.TripCount["head"] != 42 {
		t.Errorf("TripCount lost in round trip: %v", g.TripCount)
	}
	if len(g.Params) != 1 || g.Params[0].Name != "n" {
		t.Errorf("params lost: %v", g.Params)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no header", "entry:\n  ret\n}"},
		{"bad opcode", "func f() {\nentry:\n  v = frobnicate v\n}"},
		{"missing close", "func f() {\nentry:\n  ret\n"},
		{"instr before label", "func f() {\n  ret\n}"},
		{"add missing operand", "func f() {\nentry:\n  v = add v\n}"},
		{"extra operand", "func f() {\nentry:\n  nop v\n  ret\n}"},
		{"bad immediate", "func f() {\nentry:\n  v = const abc\n  ret\n}"},
		{"store needs def-less", "func f() {\nentry:\n  v = store v, v, 0\n  ret\n}"},
		{"bad trip", "func f() {\nentry: !trip xyz\n  ret\n}"},
		{"unknown attr", "func f() {\nentry: !foo 3\n  ret\n}"},
		{"content after close", "func f() {\nentry:\n  ret\n}\n  nop\n"},
		{"undefined value", "func f() {\nentry:\n  ret ghost\n}"},
		{"missing comma", "func f() {\nentry:\n  v = add a b\n  ret\n}"},
		{"call without callee", "func f() {\nentry:\n  v = call\n  ret v\n}"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", tc.name)
		}
	}
}

func TestParseForwardBranch(t *testing.T) {
	src := `
func f(n) {
entry:
  c = cmplt n, n
  cbr c, later, done
later:
  br done
done:
  ret
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Blocks) != 3 {
		t.Errorf("blocks = %d, want 3", len(f.Blocks))
	}
	if f.Entry.Name != "entry" {
		t.Errorf("entry = %s", f.Entry.Name)
	}
}

func TestParseComments(t *testing.T) {
	src := `
# leading comment
func f() { # trailing
entry: # block comment
  v = const 3 # set v
  ret v
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse with comments: %v", err)
	}
	if f.NumInstrs() != 2 {
		t.Errorf("NumInstrs = %d, want 2", f.NumInstrs())
	}
}

func TestClone(t *testing.T) {
	f := buildSimpleLoop(t)
	f.TripCount["head"] = 7
	g := f.Clone()
	if Print(f) != Print(g) {
		t.Errorf("clone prints differently:\n%s\nvs\n%s", Print(f), Print(g))
	}
	if g.TripCount["head"] != 7 {
		t.Error("TripCount not cloned")
	}
	// Mutating the clone must not affect the original.
	gb := g.BlockNamed("body")
	gb.RemoveAt(0)
	if Print(f) == Print(g) {
		t.Error("clone shares structure with original")
	}
	if err := Verify(f); err != nil {
		t.Errorf("original corrupted by clone mutation: %v", err)
	}
	// Clone must reference its own values/blocks, not the original's.
	for _, b := range g.Blocks {
		if b.Func() != g {
			t.Error("cloned block has wrong function link")
		}
		for _, in := range b.Instrs {
			for _, u := range in.Uses {
				if f.ValueNamed(u.Name) == u {
					t.Fatalf("cloned instr aliases original value %s", u.Name)
				}
			}
			for _, tgt := range in.Targets {
				if tgt.Func() != g {
					t.Fatal("cloned branch targets original block")
				}
			}
		}
	}
}

func TestEffLatency(t *testing.T) {
	f := NewFunc("f")
	blk := f.NewBlock("b")
	b := NewBuilder(f, blk)
	x := b.Const(1)
	y := b.Mul(x, x)
	b.RetVal(y)
	mul := blk.Instrs[1]
	if mul.EffLatency() != Mul.DefaultLatency() {
		t.Errorf("EffLatency = %d, want default %d", mul.EffLatency(), Mul.DefaultLatency())
	}
	mul.Latency = 7
	if mul.EffLatency() != 7 {
		t.Errorf("EffLatency = %d, want 7", mul.EffLatency())
	}
}

func TestTerminatorNil(t *testing.T) {
	f := NewFunc("f")
	blk := f.NewBlock("b")
	if blk.Terminator() != nil {
		t.Error("empty block must have nil terminator")
	}
	NewBuilder(f, blk).Const(1)
	if blk.Terminator() != nil {
		t.Error("block without terminator must return nil")
	}
	if blk.Succs() != nil {
		t.Error("Succs of unterminated block must be nil")
	}
}

func TestBuilderPanicsWithoutBlock(t *testing.T) {
	f := NewFunc("f")
	b := NewBuilder(f, nil)
	defer func() {
		if recover() == nil {
			t.Error("emit without block did not panic")
		}
	}()
	b.Nop()
}

func TestValueString(t *testing.T) {
	var v *Value
	if v.String() != "<nil>" {
		t.Error("nil value String")
	}
	f := NewFunc("f")
	x := f.NewValue("x")
	if x.String() != "x" {
		t.Errorf("String = %q", x.String())
	}
	if !strings.Contains(x.GoString(), "x") {
		t.Errorf("GoString = %q", x.GoString())
	}
}
