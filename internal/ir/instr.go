package ir

import (
	"fmt"
	"strings"
)

// Instr is a single three-address instruction.
//
// The zero Instr is not valid; construct instructions through the
// Builder or NewInstr so operand counts match the opcode.
type Instr struct {
	// ID is a dense per-function index assigned by Function.Renumber.
	// Thermal analysis results are keyed by it.
	ID int
	// Op is the opcode.
	Op Op
	// Def is the defined value, or nil for opcodes without a result.
	Def *Value
	// Uses are the value operands, in opcode order.
	Uses []*Value
	// Imm is the immediate operand for Const (the constant) and
	// Load/Store (the byte offset).
	Imm int64
	// Targets are the successor blocks of a terminator: one for Br,
	// two (then, else) for CondBr, none otherwise.
	Targets []*Block
	// Latency is the execution latency in cycles; 0 means the opcode
	// default.
	Latency int
	// Callee names the invoked function for Call instructions.
	Callee string

	block *Block // parent block, maintained by Block methods
}

// NewInstr constructs a free-standing instruction (not yet inserted in a
// block) and validates the operand count against the opcode.
func NewInstr(op Op, def *Value, uses []*Value, imm int64, targets ...*Block) (*Instr, error) {
	in := &Instr{Op: op, Def: def, Uses: uses, Imm: imm, Targets: targets}
	if err := in.checkShape(); err != nil {
		return nil, err
	}
	return in, nil
}

func (in *Instr) checkShape() error {
	op := in.Op
	wantUses := op.NumUses()
	switch {
	case op == Ret:
		if len(in.Uses) > 1 {
			return fmt.Errorf("ir: ret takes at most one operand, got %d", len(in.Uses))
		}
	case op == Call:
		if in.Callee == "" {
			return fmt.Errorf("ir: call without callee name")
		}
	case len(in.Uses) != wantUses:
		return fmt.Errorf("ir: %s takes %d operands, got %d", op, wantUses, len(in.Uses))
	}
	if op != Call && in.Callee != "" {
		return fmt.Errorf("ir: %s carries a callee name", op)
	}
	if op.HasDef() && in.Def == nil {
		return fmt.Errorf("ir: %s requires a definition", op)
	}
	if !op.HasDef() && in.Def != nil {
		return fmt.Errorf("ir: %s does not define a value", op)
	}
	wantTargets := 0
	switch op {
	case Br:
		wantTargets = 1
	case CondBr:
		wantTargets = 2
	}
	if len(in.Targets) != wantTargets {
		return fmt.Errorf("ir: %s takes %d targets, got %d", op, wantTargets, len(in.Targets))
	}
	for i, t := range in.Targets {
		if t == nil {
			return fmt.Errorf("ir: %s target %d is nil", op, i)
		}
	}
	for i, u := range in.Uses {
		if u == nil {
			return fmt.Errorf("ir: %s operand %d is nil", op, i)
		}
	}
	return nil
}

// Block returns the basic block containing the instruction, or nil if
// the instruction has not been inserted.
func (in *Instr) Block() *Block { return in.block }

// IsTerminator reports whether the instruction ends its block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// EffLatency returns the instruction's effective latency in cycles: the
// explicit Latency if set, otherwise the opcode default.
func (in *Instr) EffLatency() int {
	if in.Latency > 0 {
		return in.Latency
	}
	return in.Op.DefaultLatency()
}

// AccessedValues returns the values whose registers the instruction
// touches: all uses followed by the definition (if any). Register-file
// power accounting is driven by this set. The result is freshly
// allocated.
func (in *Instr) AccessedValues() []*Value {
	vals := make([]*Value, 0, len(in.Uses)+1)
	vals = append(vals, in.Uses...)
	if in.Def != nil {
		vals = append(vals, in.Def)
	}
	return vals
}

// ReplaceUse substitutes new for every occurrence of old among the
// instruction's operands and returns the number of replacements.
func (in *Instr) ReplaceUse(old, new *Value) int {
	n := 0
	for i, u := range in.Uses {
		if u == old {
			in.Uses[i] = new
			n++
		}
	}
	return n
}

// String renders the instruction in the textual IR syntax, e.g.
// "v2 = add v0, v1" or "store v2, v3, 8" or "cbr v4, body, exit".
func (in *Instr) String() string {
	var b strings.Builder
	if in.Def != nil {
		b.WriteString(in.Def.Name)
		b.WriteString(" = ")
	}
	b.WriteString(in.Op.String())
	sep := " "
	if in.Op == Call {
		b.WriteString(sep)
		b.WriteString(in.Callee)
		sep = ", "
	}
	for _, u := range in.Uses {
		b.WriteString(sep)
		b.WriteString(u.Name)
		sep = ", "
	}
	switch in.Op {
	case Const:
		fmt.Fprintf(&b, " %d", in.Imm)
	case Load, Store:
		fmt.Fprintf(&b, ", %d", in.Imm)
	}
	for _, t := range in.Targets {
		b.WriteString(sep)
		b.WriteString(t.Name)
		sep = ", "
	}
	return b.String()
}
