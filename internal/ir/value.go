package ir

import "fmt"

// Value is a virtual register: a variable of the program being
// compiled. Values are created through Function.NewValue and are unique
// per function. Register allocation assigns each value that survives to
// a physical register of the modelled register file (or spills it).
type Value struct {
	// ID is the dense index of the value within its function, assigned
	// at creation. Analyses use it to index bit vectors.
	ID int
	// Name is the printable name ("v3", or a user-supplied name such as
	// "sum"). Names are unique within a function.
	Name string
	// Param indicates the value is a function parameter: it is defined
	// on entry rather than by an instruction.
	Param bool
}

// String returns the value's name.
func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	return v.Name
}

// GoString implements fmt.GoStringer for debugging.
func (v *Value) GoString() string {
	return fmt.Sprintf("&ir.Value{ID: %d, Name: %q}", v.ID, v.Name)
}
