package ir_test

// Native fuzz targets for the textual IR parsers. The seed corpus is
// drawn from the built-in kernels — real programs exercising every op,
// loop hints and multi-block control flow — plus degenerate inputs.
// Run with:
//
//	go test ./internal/ir -fuzz FuzzParse -fuzztime 30s
//	go test ./internal/ir -fuzz FuzzParseModule -fuzztime 30s
//
// Under plain `go test` only the seed corpus runs. This file is an
// external test (package ir_test) so it can import the workload
// package for seeds without an import cycle.

import (
	"testing"

	"thermflow/internal/ir"
	"thermflow/internal/workload"
)

func seedCorpus(f *testing.F) {
	for _, k := range workload.All() {
		f.Add(k.Fn.String())
	}
	f.Add("")
	f.Add("func f() {\nentry:\n  ret\n}")
	f.Add("func f(a, b) {\nentry:\n  c = add a, b\n  ret c\n}")
	f.Add("func f() {\nentry:\n  x = const 1\n  br head\nhead: !trip 8\n  cbr x, head, out\nout:\n  ret x\n}")
	f.Add("func f() {")
	f.Add("entry:\n ret")
	f.Add("func f() {\nentry:\n  x = bogus y, z\n  ret x\n}")
	f.Add("func \x00() {}")
}

// FuzzParse asserts ir.Parse never panics, and that accepted programs
// survive a print/re-parse round trip with a stable printed form.
func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := ir.Parse(src)
		if err != nil {
			return
		}
		text := fn.String()
		fn2, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("accepted program failed to re-parse: %v\noriginal:\n%s\nprinted:\n%s", err, src, text)
		}
		if text2 := fn2.String(); text2 != text {
			t.Fatalf("printed form is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, text2)
		}
	})
}

// FuzzParseModule asserts ir.ParseModule never panics, and that
// accepted modules survive a print/re-parse round trip.
func FuzzParseModule(f *testing.F) {
	seedCorpus(f)
	f.Add(`
func square(x) {
entry:
  r = mul x, x
  ret r
}

func sumsq(a, b) {
entry:
  sa = call square, a
  sb = call square, b
  s = add sa, sb
  ret s
}
`)
	f.Add("func a() {\nentry:\n  ret\n}\nfunc a() {\nentry:\n  ret\n}")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ir.ParseModule(src)
		if err != nil {
			return
		}
		text := m.String()
		m2, err := ir.ParseModule(text)
		if err != nil {
			t.Fatalf("accepted module failed to re-parse: %v\nprinted:\n%s", err, text)
		}
		if text2 := m2.String(); text2 != text {
			t.Fatalf("printed form is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, text2)
		}
	})
}
