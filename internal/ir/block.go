package ir

import "fmt"

// Block is a basic block: a maximal straight-line instruction sequence
// ending in exactly one terminator. Blocks are created through
// Function.NewBlock.
type Block struct {
	// Index is the dense index of the block within its function,
	// refreshed by Function.Renumber.
	Index int
	// Name is the block label, unique within the function.
	Name string
	// Instrs is the instruction sequence. Use Append/InsertAt/RemoveAt
	// to keep parent links consistent.
	Instrs []*Instr

	fn *Function
}

// Func returns the function containing the block.
func (b *Block) Func() *Function { return b.fn }

// String returns the block label.
func (b *Block) String() string { return b.Name }

// Append adds an instruction at the end of the block.
func (b *Block) Append(in *Instr) {
	in.block = b
	b.Instrs = append(b.Instrs, in)
}

// InsertAt inserts an instruction at position i (0 ≤ i ≤ len).
func (b *Block) InsertAt(i int, in *Instr) {
	if i < 0 || i > len(b.Instrs) {
		panic(fmt.Sprintf("ir: InsertAt(%d) out of range [0,%d]", i, len(b.Instrs)))
	}
	in.block = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// RemoveAt removes and returns the instruction at position i.
func (b *Block) RemoveAt(i int) *Instr {
	in := b.Instrs[i]
	copy(b.Instrs[i:], b.Instrs[i+1:])
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	in.block = nil
	return in
}

// Terminator returns the block's final instruction if it is a
// terminator, or nil for an (ill-formed or under-construction) block
// without one.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the successor blocks as given by the terminator.
// The returned slice aliases the terminator's target list.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Targets
}

// NumInstrs returns the number of instructions in the block.
func (b *Block) NumInstrs() int { return len(b.Instrs) }
