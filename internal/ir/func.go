package ir

import "fmt"

// Function is a single procedure: an entry block, a set of basic
// blocks, the values (virtual registers) they operate on, and optional
// parameters that are defined on entry.
//
// The paper describes its analysis "in the context of a single
// procedure"; Function is that context.
type Function struct {
	// Name identifies the function in reports.
	Name string
	// Blocks lists the basic blocks. Blocks[0] is not necessarily the
	// entry; use Entry.
	Blocks []*Block
	// Entry is the entry block.
	Entry *Block
	// Params are values defined on function entry (base addresses,
	// sizes, ...). The interpreter binds them to concrete inputs.
	Params []*Value
	// TripCount optionally hints the expected iteration count of the
	// loop headed by a block, overriding the static default used in
	// frequency estimation. Keyed by header block name so hints survive
	// cloning.
	TripCount map[string]int

	values    []*Value
	blockSeq  int
	valueSeq  int
	numInstrs int // valid after Renumber
}

// NewFunc creates an empty function with the given name.
func NewFunc(name string) *Function {
	return &Function{Name: name, TripCount: make(map[string]int)}
}

// NewBlock creates a block with the given label (made unique if
// necessary) and appends it to the function. The first created block
// becomes the entry.
func (f *Function) NewBlock(name string) *Block {
	if name == "" {
		name = fmt.Sprintf("b%d", f.blockSeq)
	}
	for f.blockNamed(name) != nil {
		name = fmt.Sprintf("%s.%d", name, f.blockSeq)
	}
	b := &Block{Name: name, Index: len(f.Blocks), fn: f}
	f.blockSeq++
	f.Blocks = append(f.Blocks, b)
	if f.Entry == nil {
		f.Entry = b
	}
	return b
}

func (f *Function) blockNamed(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// BlockNamed returns the block with the given label, or nil.
func (f *Function) BlockNamed(name string) *Block { return f.blockNamed(name) }

// NewValue creates a fresh value. An empty name yields "v<N>"; an
// explicit name is made unique if it collides.
func (f *Function) NewValue(name string) *Value {
	if name == "" {
		name = fmt.Sprintf("v%d", f.valueSeq)
	}
	for f.ValueNamed(name) != nil {
		name = fmt.Sprintf("%s.%d", name, f.valueSeq)
	}
	v := &Value{ID: len(f.values), Name: name}
	f.valueSeq++
	f.values = append(f.values, v)
	return v
}

// NewParam creates a fresh value marked as a function parameter.
func (f *Function) NewParam(name string) *Value {
	v := f.NewValue(name)
	v.Param = true
	f.Params = append(f.Params, v)
	return v
}

// ValueNamed returns the value with the given name, or nil.
func (f *Function) ValueNamed(name string) *Value {
	for _, v := range f.values {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// Values returns all values of the function, indexed by Value.ID.
// The returned slice must not be mutated.
func (f *Function) Values() []*Value { return f.values }

// NumValues returns the number of values created in the function.
func (f *Function) NumValues() int { return len(f.values) }

// NumInstrs returns the total instruction count as of the last
// Renumber.
func (f *Function) NumInstrs() int { return f.numInstrs }

// Numbered reports whether block indices and instruction IDs are
// already dense and in order — the state Renumber establishes. It is
// read-only, so analyses can use it to skip Renumber's writes and
// safely share one function across goroutines. That safety rests on
// the package-wide invariant that every producer calls Renumber after
// mutating a function: a pass that forgets reintroduces the write
// under concurrent readers.
func (f *Function) Numbered() bool {
	id := 0
	for bi, b := range f.Blocks {
		if b.Index != bi {
			return false
		}
		for _, in := range b.Instrs {
			if in.ID != id {
				return false
			}
			id++
		}
	}
	return f.numInstrs == id
}

// Renumber assigns dense IDs: Block.Index in function order and
// Instr.ID in (block, position) order. Analyses that index by ID must
// run after Renumber. It returns the total instruction count.
func (f *Function) Renumber() int {
	id := 0
	for bi, b := range f.Blocks {
		b.Index = bi
		for _, in := range b.Instrs {
			in.ID = id
			id++
		}
	}
	f.numInstrs = id
	return id
}

// ForEachInstr calls fn for every instruction in block order.
func (f *Function) ForEachInstr(fn func(*Block, *Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fn(b, in)
		}
	}
}

// Instrs returns all instructions in (block, position) order. The slice
// is freshly allocated; it is valid until the function is mutated.
func (f *Function) Instrs() []*Instr {
	out := make([]*Instr, 0, f.numInstrs)
	for _, b := range f.Blocks {
		out = append(out, b.Instrs...)
	}
	return out
}

// Preds computes the predecessor lists of every block, indexed by
// Block.Index. Call Renumber first if blocks were added or removed.
func (f *Function) Preds() [][]*Block {
	preds := make([][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	return preds
}

// Clone returns a deep copy of the function: new blocks, instructions
// and values with identical names, IDs and structure. Optimization
// passes clone before mutating so callers keep the original.
func (f *Function) Clone() *Function {
	g := NewFunc(f.Name)
	g.blockSeq = f.blockSeq
	g.valueSeq = f.valueSeq
	for h, n := range f.TripCount {
		g.TripCount[h] = n
	}
	vmap := make(map[*Value]*Value, len(f.values))
	for _, v := range f.values {
		nv := &Value{ID: v.ID, Name: v.Name, Param: v.Param}
		g.values = append(g.values, nv)
		vmap[v] = nv
		if v.Param {
			g.Params = append(g.Params, nv)
		}
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name, Index: b.Index, fn: g}
		g.Blocks = append(g.Blocks, nb)
		bmap[b] = nb
	}
	if f.Entry != nil {
		g.Entry = bmap[f.Entry]
	}
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				ID:      in.ID,
				Op:      in.Op,
				Imm:     in.Imm,
				Latency: in.Latency,
				Callee:  in.Callee,
				block:   nb,
			}
			if in.Def != nil {
				ni.Def = vmap[in.Def]
			}
			if len(in.Uses) > 0 {
				ni.Uses = make([]*Value, len(in.Uses))
				for i, u := range in.Uses {
					ni.Uses[i] = vmap[u]
				}
			}
			if len(in.Targets) > 0 {
				ni.Targets = make([]*Block, len(in.Targets))
				for i, t := range in.Targets {
					ni.Targets[i] = bmap[t]
				}
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
	}
	g.numInstrs = f.numInstrs
	return g
}
