package ir

import "fmt"

// Op enumerates the instruction opcodes of the IR.
type Op uint8

// Opcode values. Arithmetic and logic instructions define one value and
// use one or two; memory instructions address a flat byte-addressed
// memory via a base value plus an immediate offset; control-flow
// instructions terminate basic blocks.
const (
	// Nop does nothing for one cycle. Thermal-aware NOP insertion
	// (paper §4) emits these to let hot registers cool down.
	Nop Op = iota

	Const // def = Imm
	Mov   // def = use0

	Add // def = use0 + use1
	Sub // def = use0 - use1
	Mul // def = use0 * use1
	Div // def = use0 / use1 (0 if use1 == 0)
	Rem // def = use0 % use1 (0 if use1 == 0)
	And // def = use0 & use1
	Or  // def = use0 | use1
	Xor // def = use0 ^ use1
	Shl // def = use0 << (use1 & 63)
	Shr // def = use0 >> (use1 & 63), arithmetic
	Neg // def = -use0
	Not // def = ^use0

	CmpEQ // def = use0 == use1 ? 1 : 0
	CmpNE // def = use0 != use1 ? 1 : 0
	CmpLT // def = use0 <  use1 ? 1 : 0
	CmpLE // def = use0 <= use1 ? 1 : 0
	CmpGT // def = use0 >  use1 ? 1 : 0
	CmpGE // def = use0 >= use1 ? 1 : 0

	Load  // def = mem[use0 + Imm]
	Store // mem[use1 + Imm] = use0

	Br     // branch to Targets[0]
	CondBr // if use0 != 0 branch to Targets[0] else Targets[1]
	Ret    // return (optional use0)

	// Call invokes another function of the module: def = callee(uses...).
	// The callee is named by Instr.Callee; arity is checked against the
	// callee's parameter list by Module.Verify. The paper describes its
	// analysis "in the context of a single procedure"; calls are lifted
	// by opt.Inline before analysis.
	Call

	numOps // sentinel; must be last
)

// NumOps is the number of distinct opcodes.
const NumOps = int(numOps)

var opNames = [...]string{
	Nop:    "nop",
	Const:  "const",
	Mov:    "mov",
	Add:    "add",
	Sub:    "sub",
	Mul:    "mul",
	Div:    "div",
	Rem:    "rem",
	And:    "and",
	Or:     "or",
	Xor:    "xor",
	Shl:    "shl",
	Shr:    "shr",
	Neg:    "neg",
	Not:    "not",
	CmpEQ:  "cmpeq",
	CmpNE:  "cmpne",
	CmpLT:  "cmplt",
	CmpLE:  "cmple",
	CmpGT:  "cmpgt",
	CmpGE:  "cmpge",
	Load:   "load",
	Store:  "store",
	Br:     "br",
	CondBr: "cbr",
	Ret:    "ret",
	Call:   "call",
}

// String returns the mnemonic of the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// opInfo captures static properties of each opcode.
type opInfo struct {
	nUses      int  // number of value operands
	hasDef     bool // defines a value
	hasImm     bool // carries an immediate
	terminator bool // ends a basic block
	latency    int  // default latency in cycles
}

var opInfos = [...]opInfo{
	Nop:    {0, false, false, false, 1},
	Const:  {0, true, true, false, 1},
	Mov:    {1, true, false, false, 1},
	Add:    {2, true, false, false, 1},
	Sub:    {2, true, false, false, 1},
	Mul:    {2, true, false, false, 3},
	Div:    {2, true, false, false, 10},
	Rem:    {2, true, false, false, 10},
	And:    {2, true, false, false, 1},
	Or:     {2, true, false, false, 1},
	Xor:    {2, true, false, false, 1},
	Shl:    {2, true, false, false, 1},
	Shr:    {2, true, false, false, 1},
	Neg:    {1, true, false, false, 1},
	Not:    {1, true, false, false, 1},
	CmpEQ:  {2, true, false, false, 1},
	CmpNE:  {2, true, false, false, 1},
	CmpLT:  {2, true, false, false, 1},
	CmpLE:  {2, true, false, false, 1},
	CmpGT:  {2, true, false, false, 1},
	CmpGE:  {2, true, false, false, 1},
	Load:   {1, true, true, false, 2},
	Store:  {2, false, true, false, 1},
	Br:     {0, false, false, true, 1},
	CondBr: {1, false, false, true, 1},
	Ret:    {0, false, false, true, 1}, // Ret may optionally use one value
	Call:   {0, true, false, false, 2}, // Call takes any number of arguments
}

// NumUses returns the number of value operands the opcode requires.
// Ret is special: it accepts zero or one use.
func (op Op) NumUses() int { return opInfos[op].nUses }

// HasDef reports whether the opcode defines a value.
func (op Op) HasDef() bool { return opInfos[op].hasDef }

// HasImm reports whether the opcode carries an immediate operand.
func (op Op) HasImm() bool { return opInfos[op].hasImm }

// IsTerminator reports whether the opcode ends a basic block.
func (op Op) IsTerminator() bool { return opInfos[op].terminator }

// DefaultLatency returns the default execution latency of the opcode in
// processor cycles. Latency scales the time over which an instruction's
// access power is applied to the thermal model.
func (op Op) DefaultLatency() int { return opInfos[op].latency }

// IsCommutative reports whether the binary opcode's operands may be
// swapped without changing its result.
func (op Op) IsCommutative() bool {
	switch op {
	case Add, Mul, And, Or, Xor, CmpEQ, CmpNE:
		return true
	}
	return false
}

// IsCompare reports whether the opcode is a comparison producing 0/1.
func (op Op) IsCompare() bool { return op >= CmpEQ && op <= CmpGE }

// IsMemory reports whether the opcode accesses memory.
func (op Op) IsMemory() bool { return op == Load || op == Store }

// OpByName returns the opcode with the given mnemonic.
func OpByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return Op(op), true
		}
	}
	return Nop, false
}
