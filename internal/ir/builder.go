package ir

// Builder provides a fluent API for emitting instructions into basic
// blocks. All emit methods panic on malformed operand shapes, which can
// only arise from programming errors in workload construction, not from
// user input.
type Builder struct {
	fn  *Function
	blk *Block
}

// NewBuilder returns a builder for fn positioned at block b (which may
// be nil; call SetBlock before emitting).
func NewBuilder(fn *Function, b *Block) *Builder {
	return &Builder{fn: fn, blk: b}
}

// Func returns the function under construction.
func (bld *Builder) Func() *Function { return bld.fn }

// Block returns the current insertion block.
func (bld *Builder) Block() *Block { return bld.blk }

// SetBlock moves the insertion point to block b.
func (bld *Builder) SetBlock(b *Block) { bld.blk = b }

// NewBlock creates a block and returns it without changing the
// insertion point.
func (bld *Builder) NewBlock(name string) *Block { return bld.fn.NewBlock(name) }

func (bld *Builder) emit(op Op, def *Value, uses []*Value, imm int64, targets ...*Block) *Instr {
	in, err := NewInstr(op, def, uses, imm, targets...)
	if err != nil {
		panic(err)
	}
	if bld.blk == nil {
		panic("ir: Builder has no insertion block")
	}
	bld.blk.Append(in)
	return in
}

func (bld *Builder) def(name string) *Value { return bld.fn.NewValue(name) }

// Nop emits a no-op.
func (bld *Builder) Nop() *Instr { return bld.emit(Nop, nil, nil, 0) }

// Const emits v = const imm and returns v.
func (bld *Builder) Const(imm int64) *Value {
	v := bld.def("")
	bld.emit(Const, v, nil, imm)
	return v
}

// ConstNamed emits name = const imm and returns the value.
func (bld *Builder) ConstNamed(name string, imm int64) *Value {
	v := bld.def(name)
	bld.emit(Const, v, nil, imm)
	return v
}

// Mov emits v = mov a.
func (bld *Builder) Mov(a *Value) *Value {
	v := bld.def("")
	bld.emit(Mov, v, []*Value{a}, 0)
	return v
}

// MovTo emits dst = mov a, reusing an existing destination value. This
// is the raw copy used by live-range splitting.
func (bld *Builder) MovTo(dst, a *Value) *Instr {
	return bld.emit(Mov, dst, []*Value{a}, 0)
}

// OpTo emits dst = op a, b onto an existing destination value — the
// non-SSA redefinition used for loop counters and accumulators.
func (bld *Builder) OpTo(op Op, dst, a, b *Value) *Instr {
	return bld.emit(op, dst, []*Value{a, b}, 0)
}

func (bld *Builder) binary(op Op, a, b *Value) *Value {
	v := bld.def("")
	bld.emit(op, v, []*Value{a, b}, 0)
	return v
}

// Add emits v = add a, b.
func (bld *Builder) Add(a, b *Value) *Value { return bld.binary(Add, a, b) }

// Sub emits v = sub a, b.
func (bld *Builder) Sub(a, b *Value) *Value { return bld.binary(Sub, a, b) }

// Mul emits v = mul a, b.
func (bld *Builder) Mul(a, b *Value) *Value { return bld.binary(Mul, a, b) }

// Div emits v = div a, b.
func (bld *Builder) Div(a, b *Value) *Value { return bld.binary(Div, a, b) }

// Rem emits v = rem a, b.
func (bld *Builder) Rem(a, b *Value) *Value { return bld.binary(Rem, a, b) }

// And emits v = and a, b.
func (bld *Builder) And(a, b *Value) *Value { return bld.binary(And, a, b) }

// Or emits v = or a, b.
func (bld *Builder) Or(a, b *Value) *Value { return bld.binary(Or, a, b) }

// Xor emits v = xor a, b.
func (bld *Builder) Xor(a, b *Value) *Value { return bld.binary(Xor, a, b) }

// Shl emits v = shl a, b.
func (bld *Builder) Shl(a, b *Value) *Value { return bld.binary(Shl, a, b) }

// Shr emits v = shr a, b.
func (bld *Builder) Shr(a, b *Value) *Value { return bld.binary(Shr, a, b) }

// Neg emits v = neg a.
func (bld *Builder) Neg(a *Value) *Value {
	v := bld.def("")
	bld.emit(Neg, v, []*Value{a}, 0)
	return v
}

// Not emits v = not a.
func (bld *Builder) Not(a *Value) *Value {
	v := bld.def("")
	bld.emit(Not, v, []*Value{a}, 0)
	return v
}

// CmpEQ emits v = cmpeq a, b.
func (bld *Builder) CmpEQ(a, b *Value) *Value { return bld.binary(CmpEQ, a, b) }

// CmpNE emits v = cmpne a, b.
func (bld *Builder) CmpNE(a, b *Value) *Value { return bld.binary(CmpNE, a, b) }

// CmpLT emits v = cmplt a, b.
func (bld *Builder) CmpLT(a, b *Value) *Value { return bld.binary(CmpLT, a, b) }

// CmpLE emits v = cmple a, b.
func (bld *Builder) CmpLE(a, b *Value) *Value { return bld.binary(CmpLE, a, b) }

// CmpGT emits v = cmpgt a, b.
func (bld *Builder) CmpGT(a, b *Value) *Value { return bld.binary(CmpGT, a, b) }

// CmpGE emits v = cmpge a, b.
func (bld *Builder) CmpGE(a, b *Value) *Value { return bld.binary(CmpGE, a, b) }

// Load emits v = load base, off.
func (bld *Builder) Load(base *Value, off int64) *Value {
	v := bld.def("")
	bld.emit(Load, v, []*Value{base}, off)
	return v
}

// Store emits store val, base, off.
func (bld *Builder) Store(val, base *Value, off int64) *Instr {
	return bld.emit(Store, nil, []*Value{val, base}, off)
}

// Br emits an unconditional branch to target.
func (bld *Builder) Br(target *Block) *Instr {
	return bld.emit(Br, nil, nil, 0, target)
}

// CondBr emits a conditional branch: if cond != 0 go to then else go to
// els.
func (bld *Builder) CondBr(cond *Value, then, els *Block) *Instr {
	return bld.emit(CondBr, nil, []*Value{cond}, 0, then, els)
}

// Call emits v = call callee(args...) and returns v.
func (bld *Builder) Call(callee string, args ...*Value) *Value {
	v := bld.def("")
	in := &Instr{Op: Call, Def: v, Uses: args, Callee: callee}
	if err := in.checkShape(); err != nil {
		panic(err)
	}
	bld.blk.Append(in)
	return v
}

// Ret emits a return without value.
func (bld *Builder) Ret() *Instr { return bld.emit(Ret, nil, nil, 0) }

// RetVal emits a return of value a.
func (bld *Builder) RetVal(a *Value) *Instr {
	return bld.emit(Ret, nil, []*Value{a}, 0)
}
