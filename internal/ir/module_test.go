package ir

import (
	"strings"
	"testing"
)

const moduleSrc = `
func square(x) {
entry:
  r = mul x, x
  ret r
}

func sumsq(a, b) {
entry:
  sa = call square, a
  sb = call square, b
  s = add sa, sb
  ret s
}
`

func TestParseModule(t *testing.T) {
	m, err := ParseModule(moduleSrc)
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	if len(m.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(m.Funcs))
	}
	if m.Func("square") == nil || m.Func("sumsq") == nil {
		t.Fatal("functions not indexed")
	}
	if m.Func("nope") != nil {
		t.Fatal("unknown function resolved")
	}
	// Round trip.
	m2, err := ParseModule(m.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if m.String() != m2.String() {
		t.Error("module print/parse not stable")
	}
}

func TestCallInstrShape(t *testing.T) {
	f := NewFunc("f")
	blk := f.NewBlock("entry")
	b := NewBuilder(f, blk)
	x := b.Const(3)
	v := b.Call("g", x, x)
	b.RetVal(v)
	call := blk.Instrs[1]
	if call.Op != Call || call.Callee != "g" || len(call.Uses) != 2 {
		t.Fatalf("call = %v", call)
	}
	if got := call.String(); !strings.Contains(got, "call g, v0, v0") {
		t.Errorf("String = %q", got)
	}
	// Callee on a non-call is rejected.
	bad := &Instr{Op: Add, Def: v, Uses: []*Value{x, x}, Callee: "g"}
	if err := bad.checkShape(); err == nil {
		t.Error("callee on add accepted")
	}
	// Call without callee is rejected.
	bad2 := &Instr{Op: Call, Def: v}
	if err := bad2.checkShape(); err == nil {
		t.Error("call without callee accepted")
	}
}

func TestModuleVerifyErrors(t *testing.T) {
	t.Run("unknown callee", func(t *testing.T) {
		_, err := ParseModule(`
func f() {
entry:
  v = call ghost
  ret v
}`)
		if err == nil {
			t.Error("unknown callee accepted")
		}
	})
	t.Run("arity mismatch", func(t *testing.T) {
		_, err := ParseModule(`
func g(a, b) {
entry:
  s = add a, b
  ret s
}
func f() {
entry:
  x = const 1
  v = call g, x
  ret v
}`)
		if err == nil {
			t.Error("arity mismatch accepted")
		}
	})
	t.Run("direct recursion", func(t *testing.T) {
		_, err := ParseModule(`
func f(n) {
entry:
  v = call f, n
  ret v
}`)
		if err == nil {
			t.Error("recursion accepted")
		}
	})
	t.Run("mutual recursion", func(t *testing.T) {
		_, err := ParseModule(`
func f(n) {
entry:
  v = call g, n
  ret v
}
func g(n) {
entry:
  v = call f, n
  ret v
}`)
		if err == nil {
			t.Error("mutual recursion accepted")
		}
	})
	t.Run("duplicate names", func(t *testing.T) {
		a := NewFunc("dup")
		NewBuilder(a, a.NewBlock("entry")).Ret()
		b := NewFunc("dup")
		NewBuilder(b, b.NewBlock("entry")).Ret()
		if _, err := NewModule(a, b); err == nil {
			t.Error("duplicate function names accepted")
		}
	})
}

func TestCloneKeepsCallee(t *testing.T) {
	m, err := ParseModule(moduleSrc)
	if err != nil {
		t.Fatal(err)
	}
	clone := m.Func("sumsq").Clone()
	found := false
	clone.ForEachInstr(func(_ *Block, in *Instr) {
		if in.Op == Call && in.Callee == "square" {
			found = true
		}
	})
	if !found {
		t.Error("Clone lost the callee name")
	}
}
