// Package client is the Go client for a running thermflowd server
// (cmd/thermflowd): single compiles, streamed batches, kernel listing
// and cache control, speaking the wire types of thermflow/api.
//
// Typical use:
//
//	cl := client.New("http://localhost:8080", nil)
//	resp, err := cl.Compile(ctx, api.CompileRequest{Kernel: "matmul"})
//	fmt.Println(resp.PeakTemp, resp.Cached)
//
// The zero-cost way to share one result cache across many processes is
// to point them all at the same server: identical (program, options)
// jobs — even submitted concurrently — compile once.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"thermflow/api"
)

// Client talks to one thermflowd server. The zero value is not usable;
// construct with New. A Client is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080"). httpClient nil selects a default client
// with no overall timeout — batch streams are long-lived; bound them
// with the request context instead.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// APIError is a non-2xx server response.
type APIError struct {
	// StatusCode is the HTTP status; Message the server's error body.
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("thermflowd: %d: %s", e.StatusCode, e.Message)
}

// do issues a request and decodes a 2xx JSON body into out (when
// non-nil), converting error responses into *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	resp, err := c.send(ctx, method, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// send issues a request and returns the response with a verified 2xx
// status; the caller owns the body.
func (c *Client) send(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		msg := resp.Status
		var e api.ErrorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return nil, &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	return resp, nil
}

// Compile runs one job on the server (POST /v1/compile).
func (c *Client) Compile(ctx context.Context, req api.CompileRequest) (*api.CompileResponse, error) {
	var out api.CompileResponse
	if err := c.do(ctx, http.MethodPost, "/v1/compile", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CompileBatch submits jobs in one request (POST /v1/batch) and calls
// onItem for every result as the server streams it back, in completion
// order (BatchItem.Index maps each back to its job). It returns after
// the stream ends; cancelling ctx aborts the stream and cancels the
// server-side jobs not yet started.
func (c *Client) CompileBatch(ctx context.Context, jobs []api.CompileRequest, onItem func(api.BatchItem)) error {
	resp, err := c.send(ctx, http.MethodPost, "/v1/batch", api.BatchRequest{Jobs: jobs})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item api.BatchItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("client: malformed batch stream line: %w", err)
		}
		if onItem != nil {
			onItem(item)
		}
	}
	return sc.Err()
}

// Kernels lists the server's built-in benchmark kernels
// (GET /v1/kernels).
func (c *Client) Kernels(ctx context.Context) ([]api.KernelInfo, error) {
	var out api.KernelsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/kernels", nil, &out); err != nil {
		return nil, err
	}
	return out.Kernels, nil
}

// CacheStats reads the server's cache counters (GET /v1/cache).
func (c *Client) CacheStats(ctx context.Context) (api.CacheStats, error) {
	var out api.CacheStats
	err := c.do(ctx, http.MethodGet, "/v1/cache", nil, &out)
	return out, err
}

// ResetCache drops the server's result cache and zeroes its counters
// (DELETE /v1/cache), returning the zeroed stats.
func (c *Client) ResetCache(ctx context.Context) (api.CacheStats, error) {
	var out api.CacheStats
	err := c.do(ctx, http.MethodDelete, "/v1/cache", nil, &out)
	return out, err
}
