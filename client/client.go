// Package client is the Go client for a running thermflowd server
// (cmd/thermflowd): synchronous v1 compiles, the v2 asynchronous job
// lifecycle (submit, poll, long-poll wait, ID-keyed batch streams),
// kernel listing and cache control, speaking the wire types of
// thermflow/api.
//
// Typical synchronous use:
//
//	cl := client.New("http://localhost:8080", nil)
//	resp, err := cl.Compile(ctx, api.CompileRequest{Kernel: "matmul"})
//	fmt.Println(resp.PeakTemp, resp.Cached)
//
// Typical job-oriented use:
//
//	cl := client.New(base, nil, client.WithToken(token))
//	st, err := cl.SubmitJob(ctx, api.JobRequest{Kernel: "matmul"})
//	st, err = cl.WaitJob(ctx, st.ID, 30*time.Second) // until terminal
//
// Requests that fail with 429 or a retryable 5xx are retried with
// exponential backoff, honouring the server's Retry-After header and
// the caller's context between sleeps. Submitting a job is idempotent
// by construction — the job ID is the content hash — so retried
// submissions converge on the same job.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"thermflow/api"
)

// Default retry policy (override with WithRetries / WithBackoff).
const (
	// DefaultAttempts is the total tries per request.
	DefaultAttempts = 3
	// DefaultBackoff is the first retry delay; it doubles per retry.
	DefaultBackoff = 100 * time.Millisecond
)

// Client talks to one thermflowd server. The zero value is not usable;
// construct with New. A Client is safe for concurrent use.
type Client struct {
	base     string
	hc       *http.Client
	token    string
	attempts int
	backoff  time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithToken sends the bearer token on every request (thermflowd
// -auth-token-file).
func WithToken(token string) Option {
	return func(c *Client) { c.token = token }
}

// WithRetries sets the total attempts per request (minimum 1, i.e. no
// retries).
func WithRetries(attempts int) Option {
	return func(c *Client) {
		if attempts < 1 {
			attempts = 1
		}
		c.attempts = attempts
	}
}

// WithBackoff sets the first retry delay (doubled per retry; the
// server's Retry-After wins when present and longer).
func WithBackoff(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.backoff = d
		}
	}
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080"). httpClient nil selects a default client
// with no overall timeout — batch streams are long-lived; bound them
// with the request context instead.
func New(baseURL string, httpClient *http.Client, opts ...Option) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"), hc: httpClient,
		attempts: DefaultAttempts, backoff: DefaultBackoff,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx server response.
type APIError struct {
	// StatusCode is the HTTP status; Message the server's error body.
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint (zero when absent) —
	// set on 429 rate-limit and 503 busy responses.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("thermflowd: %d: %s", e.StatusCode, e.Message)
}

// Temporary reports whether retrying the identical request may
// succeed: rate limiting, registry pressure, or a transient upstream
// fault.
func (e *APIError) Temporary() bool {
	switch e.StatusCode {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// do issues a request and decodes a 2xx JSON body into out (when
// non-nil), converting error responses into *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	resp, err := c.send(ctx, method, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// send issues a request, retrying temporary failures with backoff, and
// returns the response with a verified 2xx status; the caller owns the
// body. Between attempts it sleeps the server's Retry-After when given
// (else exponential backoff), aborting promptly when ctx is done.
func (c *Client) send(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return nil, err
		}
	}
	var last error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, retryDelay(last, c.backoff, attempt)); err != nil {
				return nil, err
			}
		}
		resp, err := c.attempt(ctx, method, path, body, in != nil)
		if err == nil {
			return resp, nil
		}
		last = err
		if ctx.Err() != nil {
			return nil, err
		}
		apiErr, ok := err.(*APIError)
		if ok && !apiErr.Temporary() {
			return nil, err
		}
		// Transport errors (connection refused, reset) are retried
		// alongside Temporary API errors.
	}
	return nil, last
}

// sleep waits d or until ctx is done, whichever first — a cancelled
// context must not be held hostage by a long Retry-After.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryDelay picks the wait before the attempt-th retry: the server's
// Retry-After when it gave one, else base << (attempt-1).
func retryDelay(last error, base time.Duration, attempt int) time.Duration {
	if apiErr, ok := last.(*APIError); ok && apiErr.RetryAfter > 0 {
		return apiErr.RetryAfter
	}
	return base << (attempt - 1)
}

// attempt issues one request.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, hasBody bool) (*http.Response, error) {
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(body)
	}
	req, err := c.newRequest(ctx, method, path, rd, hasBody)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, apiErrorFrom(resp)
	}
	return resp, nil
}

// newRequest builds a request with the standard headers.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader, hasBody bool) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return req, nil
}

// apiErrorFrom drains a non-2xx response into an *APIError, surfacing
// the Retry-After header when the server sent one.
func apiErrorFrom(resp *http.Response) *APIError {
	msg := resp.Status
	var e api.ErrorResponse
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e) == nil && e.Error != "" {
		msg = e.Error
	}
	apiErr := &APIError{StatusCode: resp.StatusCode, Message: msg}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.ParseInt(ra, 10, 64); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		} else if when, err := http.ParseTime(ra); err == nil {
			if d := time.Until(when); d > 0 {
				apiErr.RetryAfter = d
			}
		}
	}
	return apiErr
}

// Compile runs one job on the server (POST /v1/compile).
func (c *Client) Compile(ctx context.Context, req api.CompileRequest) (*api.CompileResponse, error) {
	var out api.CompileResponse
	if err := c.do(ctx, http.MethodPost, "/v1/compile", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CompileBatch submits jobs in one request (POST /v1/batch) and calls
// onItem for every result as the server streams it back, in completion
// order (BatchItem.Index maps each back to its job). It returns after
// the stream ends; cancelling ctx aborts the stream and cancels the
// server-side jobs not yet started. Retries apply only up to the first
// streamed byte — a broken stream is the caller's to resume.
func (c *Client) CompileBatch(ctx context.Context, jobs []api.CompileRequest, onItem func(api.BatchItem)) error {
	resp, err := c.send(ctx, http.MethodPost, "/v1/batch", api.BatchRequest{Jobs: jobs})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return scanNDJSON(resp.Body, func(line []byte) error {
		var item api.BatchItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("client: malformed batch stream line: %w", err)
		}
		if onItem != nil {
			onItem(item)
		}
		return nil
	})
}

// SubmitJob registers a v2 job (POST /v2/jobs) and returns its handle
// without waiting. Submission is idempotent: the ID is the content
// hash, so re-submitting (including automatic retries) converges on
// the same job.
func (c *Client) SubmitJob(ctx context.Context, req api.JobRequest) (*api.JobStatus, error) {
	var out api.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v2/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job reads a job's current status (GET /v2/jobs/{id}). An expired job
// is a valid status (State "expired"), not an error.
func (c *Client) Job(ctx context.Context, id string) (*api.JobStatus, error) {
	return c.jobStatus(ctx, "/v2/jobs/"+id)
}

// JobTrace fetches a job's recorded timeline
// (GET /v2/jobs/{id}/trace): the phase spans — queue wait, run, solver
// passes, region rounds — stitched under one trace ID. Timelines are
// bounded in-memory server state; a known job whose trace aged out (or
// that was submitted untraced) answers 404.
func (c *Client) JobTrace(ctx context.Context, id string) (*api.TraceResponse, error) {
	var out api.TraceResponse
	if err := c.do(ctx, http.MethodGet, "/v2/jobs/"+id+"/trace", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob long-polls a job (GET /v2/jobs/{id}/wait) for up to timeout
// (<= 0 selects the server default window) and returns the then-
// current status — terminal or not; callers loop on State. An expired
// job is returned as a status, not an error.
func (c *Client) WaitJob(ctx context.Context, id string, timeout time.Duration) (*api.JobStatus, error) {
	path := "/v2/jobs/" + id + "/wait"
	if timeout > 0 {
		path += fmt.Sprintf("?timeout_ms=%d", timeout.Milliseconds())
	}
	return c.jobStatus(ctx, path)
}

// RunJob submits a job and long-polls until it reaches a terminal
// state or ctx is done — the convenient synchronous face of the
// asynchronous API, with the job surviving client disconnects.
func (c *Client) RunJob(ctx context.Context, req api.JobRequest) (*api.JobStatus, error) {
	st, err := c.SubmitJob(ctx, req)
	if err != nil {
		return nil, err
	}
	for !terminalState(st.State) {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		if st, err = c.WaitJob(ctx, st.ID, 0); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "expired"
}

// jobStatus fetches a JobStatus, accepting the 504 that carries an
// expired job's body. HTTP answers are never retried — polling loops
// are their own retry policy — but transport errors (connection
// refused or reset while a backend restarts, or while a gateway fails
// the ID over to another backend) are, with the same backoff as send:
// job reads are idempotent, and a sweep in progress should converge
// across a restart instead of erroring.
func (c *Client) jobStatus(ctx context.Context, path string) (*api.JobStatus, error) {
	var last error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, retryDelay(last, c.backoff, attempt)); err != nil {
				return nil, err
			}
		}
		st, err := c.jobStatusOnce(ctx, path)
		if err == nil {
			return st, nil
		}
		last = err
		if ctx.Err() != nil {
			return nil, err
		}
		if apiErr, ok := err.(*APIError); ok {
			// 502/503 are the gateway's failover window — the owner
			// died and the ring has not re-routed the ID yet. Anything
			// else is a server answer about the job, and the polling
			// loop is its own retry policy.
			if apiErr.StatusCode != http.StatusBadGateway &&
				apiErr.StatusCode != http.StatusServiceUnavailable {
				return nil, err
			}
		}
	}
	return nil, last
}

// jobStatusOnce issues one status fetch.
func (c *Client) jobStatusOnce(ctx context.Context, path string) (*api.JobStatus, error) {
	req, err := c.newRequest(ctx, http.MethodGet, path, nil, false)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 || resp.StatusCode == http.StatusGatewayTimeout {
		var out api.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, fmt.Errorf("client: job status: %w", err)
		}
		if out.ID != "" {
			out.Replica = resp.Header.Get(api.ReplicaHeader) != ""
			return &out, nil
		}
		// A 504 without a job body is a gateway's, not thermflowd's.
	}
	return nil, apiErrorFrom(resp)
}

// CompileBatchJobs submits jobs in one request (POST /v2/batch) and
// calls onItem per result as the server streams it back, in completion
// order. Items carry both the submission index and the job ID — the
// latter stable across servers, duplicates sharing one ID.
func (c *Client) CompileBatchJobs(ctx context.Context, jobs []api.JobRequest, onItem func(api.JobItem)) error {
	resp, err := c.send(ctx, http.MethodPost, "/v2/batch", api.JobsBatchRequest{Jobs: jobs})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return scanNDJSON(resp.Body, func(line []byte) error {
		var item api.JobItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("client: malformed batch stream line: %w", err)
		}
		if onItem != nil {
			onItem(item)
		}
		return nil
	})
}

// scanNDJSON feeds each non-empty stream line to fn.
func scanNDJSON(r io.Reader, fn func([]byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Kernels lists the server's built-in benchmark kernels
// (GET /v1/kernels).
func (c *Client) Kernels(ctx context.Context) ([]api.KernelInfo, error) {
	var out api.KernelsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/kernels", nil, &out); err != nil {
		return nil, err
	}
	return out.Kernels, nil
}

// CacheStats reads the server's cache counters (GET /v1/cache).
func (c *Client) CacheStats(ctx context.Context) (api.CacheStats, error) {
	var out api.CacheStats
	err := c.do(ctx, http.MethodGet, "/v1/cache", nil, &out)
	return out, err
}

// ResetCache drops the server's result cache and zeroes its counters
// (DELETE /v1/cache), returning the zeroed stats.
func (c *Client) ResetCache(ctx context.Context) (api.CacheStats, error) {
	var out api.CacheStats
	err := c.do(ctx, http.MethodDelete, "/v1/cache", nil, &out)
	return out, err
}

// Stats reads the server's status snapshot — job-registry counters
// plus cache counters (GET /v2/stats).
func (c *Client) Stats(ctx context.Context) (api.StatsResponse, error) {
	var out api.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v2/stats", nil, &out)
	return out, err
}
