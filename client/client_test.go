package client

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"thermflow"
	"thermflow/api"
	"thermflow/internal/server"
)

// flakyHandler answers with the scripted statuses, then 200 with body.
func flakyHandler(statuses []int, retryAfter string, calls *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n < len(statuses) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(statuses[n])
			_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: "try later"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.CacheStats{Workers: 7})
	})
}

// Temporary failures are retried until success.
func TestRetriesTemporaryFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(flakyHandler([]int{429, 503}, "", &calls))
	defer ts.Close()

	cl := New(ts.URL, nil, WithRetries(3), WithBackoff(time.Millisecond))
	st, err := cl.CacheStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 7 {
		t.Errorf("stats = %+v", st)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

// Permanent (4xx) failures are not retried.
func TestNoRetryOnPermanentFailure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(flakyHandler([]int{422, 422, 422}, "", &calls))
	defer ts.Close()

	cl := New(ts.URL, nil, WithRetries(3), WithBackoff(time.Millisecond))
	_, err := cl.CacheStats(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 422 {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry on 422)", got)
	}
}

// Retries exhausted: the last error surfaces.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(flakyHandler([]int{429, 429, 429, 429}, "", &calls))
	defer ts.Close()

	cl := New(ts.URL, nil, WithRetries(2), WithBackoff(time.Millisecond))
	_, err := cl.CacheStats(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 429 {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
}

// The satellite pair: Retry-After surfaces on APIError, and a
// cancelled context interrupts the backoff sleep instead of waiting it
// out.
func TestRetryAfterSurfacesAndCtxInterruptsBackoff(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(flakyHandler([]int{429}, "5", &calls))
	defer ts.Close()

	// No retries: the APIError itself carries the server's hint.
	cl := New(ts.URL, nil, WithRetries(1))
	_, err := cl.CacheStats(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v", err)
	}
	if apiErr.StatusCode != 429 || apiErr.RetryAfter != 5*time.Second {
		t.Errorf("APIError = %+v, want 429 with RetryAfter 5s", apiErr)
	}
	if !apiErr.Temporary() {
		t.Error("429 not Temporary")
	}

	// With retries, the 5s Retry-After would stall the next attempt —
	// the context must cut the sleep short.
	calls.Store(0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	cl = New(ts.URL, nil, WithRetries(3))
	start := time.Now()
	_, err = cl.CacheStats(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ctx deadline", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("backoff ignored the context: slept %v", elapsed)
	}
}

// Transport-level failures (no server) retry and then surface.
func TestTransportErrorRetries(t *testing.T) {
	cl := New("http://127.0.0.1:1", nil, WithRetries(2), WithBackoff(time.Millisecond))
	_, err := cl.CacheStats(context.Background())
	if err == nil {
		t.Fatal("no error from unreachable server")
	}
}

// The v2 job surface end to end against a scripted server: submit
// handle, poll to done, expired-as-status on 504.
func TestJobLifecycleMethods(t *testing.T) {
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req api.JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(400)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(api.JobStatus{ID: "job-1", State: "queued"})
	})
	mux.HandleFunc("GET /v2/jobs/job-1/wait", func(w http.ResponseWriter, r *http.Request) {
		st := api.JobStatus{ID: "job-1", State: "running"}
		if polls.Add(1) >= 2 {
			st.State = "done"
			st.Result = &api.CompileResponse{PeakTemp: 301.5}
		}
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("GET /v2/jobs/job-expired", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGatewayTimeout)
		_ = json.NewEncoder(w).Encode(api.JobStatus{ID: "job-expired", State: "expired", Error: "deadline passed"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := New(ts.URL, nil)
	st, err := cl.RunJob(context.Background(), api.JobRequest{Kernel: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Result == nil || st.Result.PeakTemp != 301.5 {
		t.Errorf("RunJob: %+v", st)
	}
	if polls.Load() < 2 {
		t.Errorf("RunJob polled %d times, want >= 2", polls.Load())
	}

	exp, err := cl.Job(context.Background(), "job-expired")
	if err != nil {
		t.Fatalf("expired job as error: %v", err)
	}
	if exp.State != "expired" || exp.Error == "" {
		t.Errorf("expired status: %+v", exp)
	}
}

// The bearer token rides every request kind.
func TestTokenHeader(t *testing.T) {
	var sawAuth atomic.Int64
	mux := http.NewServeMux()
	check := func(r *http.Request) {
		if r.Header.Get("Authorization") == "Bearer sesame" {
			sawAuth.Add(1)
		}
	}
	mux.HandleFunc("GET /v1/cache", func(w http.ResponseWriter, r *http.Request) {
		check(r)
		_ = json.NewEncoder(w).Encode(api.CacheStats{})
	})
	mux.HandleFunc("GET /v2/jobs/x", func(w http.ResponseWriter, r *http.Request) {
		check(r)
		_ = json.NewEncoder(w).Encode(api.JobStatus{ID: "x", State: "done"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := New(ts.URL, nil, WithToken("sesame"))
	if _, err := cl.CacheStats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Job(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	if sawAuth.Load() != 2 {
		t.Errorf("token sent on %d of 2 requests", sawAuth.Load())
	}
}

// A backend restart in the middle of a job sweep must converge, not
// error: submissions and status reads alike see connection-refused
// while the port is dark and retry with backoff until the restarted
// backend answers — the client-side half of gateway failover windows.
func TestBackendRestartMidSweepConverges(t *testing.T) {
	b := thermflow.NewBatch(2)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	srv1 := server.New(b)
	hs1 := &http.Server{Handler: srv1}
	go func() { _ = hs1.Serve(lis) }()

	cl := New("http://"+addr, nil, WithRetries(12), WithBackoff(25*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	first, err := cl.RunJob(ctx, api.JobRequest{Kernel: "dot"})
	if err != nil || first.State != "done" {
		t.Fatalf("warm-up job: state=%v err=%v", first, err)
	}

	// Kill the backend, then bring a fresh one up on the same port
	// shortly after — the failover window.
	_ = hs1.Close()
	srv1.Close()
	restarted := make(chan error, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		lis2, err := net.Listen("tcp", addr)
		if err != nil {
			restarted <- err
			return
		}
		restarted <- nil
		hs2 := &http.Server{Handler: server.New(thermflow.NewBatch(2))}
		go func() { _ = hs2.Serve(lis2) }()
	}()

	// Mid-sweep traffic into the dark window: a status read of the
	// earlier job and a fresh submission. Both must retry through the
	// refused connections and land on the restarted backend.
	st, err := cl.Job(ctx, first.ID)
	if err != nil {
		// The restarted process has an empty registry; 404 is a valid
		// server answer (not a transport error) once it is up.
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
			t.Fatalf("status read across restart: %v", err)
		}
	} else if st.ID != first.ID {
		t.Fatalf("status read returned job %s, want %s", st.ID, first.ID)
	}

	again, err := cl.RunJob(ctx, api.JobRequest{Kernel: "fir"})
	if err != nil {
		t.Fatalf("submission across restart did not converge: %v", err)
	}
	if again.State != "done" {
		t.Fatalf("post-restart job state %s, want done", again.State)
	}
	if err := <-restarted; err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
}
