package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"thermflow/api"
)

// Pool is a set of clients over the individual backends of a sharded
// (thermflowgate-fronted) deployment. Normal traffic goes through the
// gateway with a plain Client — sharding is transparent on the wire —
// but tests and operational tooling need to see through it: which
// backend owns a job, what each member's cache looks like, resetting
// every shard at once. A Pool is safe for concurrent use.
type Pool struct {
	clients []*Client
}

// NewPool builds one client per backend base URL, all sharing the
// given options (httpClient nil selects a default per client).
func NewPool(baseURLs []string, httpClient *http.Client, opts ...Option) *Pool {
	p := &Pool{clients: make([]*Client, len(baseURLs))}
	for i, base := range baseURLs {
		p.clients[i] = New(base, httpClient, opts...)
	}
	return p
}

// Size is the number of backends.
func (p *Pool) Size() int { return len(p.clients) }

// Client returns the i-th backend's client.
func (p *Pool) Client(i int) *Client { return p.clients[i] }

// ErrJobNotFound reports that no backend in the pool knows the job.
var ErrJobNotFound = errors.New("client: job on no backend in the pool")

// FindJob asks every backend for the job and returns the first
// backend (by index) that knows it — how a test asserts which shard
// owns an ID. A backend answering 404 just doesn't own it, and a
// replica-shelf answer (see api.JobStatus.Replica) is a copy, not
// ownership; any other failure aborts the scan.
func (p *Pool) FindJob(ctx context.Context, id string) (*api.JobStatus, int, error) {
	for i, cl := range p.clients {
		st, err := cl.Job(ctx, id)
		if err == nil {
			if st.Replica {
				continue
			}
			return st, i, nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
			continue
		}
		return nil, -1, fmt.Errorf("backend %d: %w", i, err)
	}
	return nil, -1, ErrJobNotFound
}

// CacheStats reads every backend's cache counters, by backend index.
func (p *Pool) CacheStats(ctx context.Context) ([]api.CacheStats, error) {
	out := make([]api.CacheStats, len(p.clients))
	for i, cl := range p.clients {
		st, err := cl.CacheStats(ctx)
		if err != nil {
			return nil, fmt.Errorf("backend %d: %w", i, err)
		}
		out[i] = st
	}
	return out, nil
}

// ResetAll drops every backend's result cache.
func (p *Pool) ResetAll(ctx context.Context) error {
	for i, cl := range p.clients {
		if _, err := cl.ResetCache(ctx); err != nil {
			return fmt.Errorf("backend %d: %w", i, err)
		}
	}
	return nil
}
