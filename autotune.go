package thermflow

import (
	"fmt"
)

// TuneStep records one transformation applied (or rejected) by
// AutoTune.
type TuneStep struct {
	// Name is the transform.
	Name string
	// PeakBefore and PeakAfter are predicted peaks around the step (K).
	PeakBefore, PeakAfter float64
	// Applied reports whether the step was kept.
	Applied bool
}

// AutoTune realizes the §4 vision of analysis-driven thermal
// compilation: starting from this compile, it greedily applies the
// thermal-aware transforms in increasing performance-cost order —
// re-assignment (free), live-range splitting, spilling, and finally
// cool-down NOPs ("applied only if no other option ... is feasible") —
// keeping each step only if it lowers the predicted peak, and stopping
// as soon as the peak drops to targetPeak kelvin.
//
// It returns the tuned compile, the step log, and an error only on
// infrastructure failures; not reaching the target is reported through
// the final peak, not an error.
func (c *Compiled) AutoTune(targetPeak float64) (*Compiled, []TuneStep, error) {
	if c.Thermal == nil {
		return nil, nil, fmt.Errorf("thermflow: AutoTune needs a thermal analysis")
	}
	cur := c
	var log []TuneStep

	type candidate struct {
		name  string
		apply func(*Compiled) (*Compiled, error)
	}
	candidates := []candidate{
		{"reassign(coldest)", func(x *Compiled) (*Compiled, error) {
			return x.ThermalReassign()
		}},
		{"split-critical-4", func(x *Compiled) (*Compiled, error) {
			return x.SplitCritical(4)
		}},
		{"spill-critical-2", func(x *Compiled) (*Compiled, error) {
			return x.SpillCritical(2)
		}},
		{"nop-insertion", func(x *Compiled) (*Compiled, error) {
			amb := x.Tech().TAmbient
			thr := amb + 0.5*(x.Thermal.PeakTemp-amb)
			nc, _, err := x.InsertCooldownNops(thr, 2)
			return nc, err
		}},
	}

	for _, cand := range candidates {
		if cur.Thermal.PeakTemp <= targetPeak {
			break
		}
		next, err := cand.apply(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("thermflow: AutoTune %s: %w", cand.name, err)
		}
		step := TuneStep{
			Name:       cand.name,
			PeakBefore: cur.Thermal.PeakTemp,
			PeakAfter:  next.Thermal.PeakTemp,
		}
		if next.Thermal.PeakTemp < cur.Thermal.PeakTemp {
			step.Applied = true
			cur = next
		}
		log = append(log, step)
	}
	return cur, log, nil
}
