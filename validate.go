package thermflow

import (
	"fmt"

	"thermflow/internal/metrics"
	"thermflow/internal/sim"
	"thermflow/internal/tdfa"
	"thermflow/internal/thermal"
)

// RunResult is the outcome of executing a compiled program.
type RunResult struct {
	// Ret is the returned value.
	Ret int64
	// Cycles is the latency-weighted execution length.
	Cycles int64
	// Instrs is the executed instruction count.
	Instrs int64
	// Trace is the register access trace.
	Trace *sim.Trace
}

// Run executes the compiled (allocated) program at the given scale
// using the program's Setup, recording the register access trace.
func (c *Compiled) Run(scale int) (*RunResult, error) {
	var args []int64
	var mem sim.Memory
	if c.Program.Setup != nil {
		args, mem = c.Program.Setup(scale)
	}
	return c.RunWith(args, mem)
}

// RunWith executes the compiled program with explicit arguments and
// memory.
func (c *Compiled) RunWith(args []int64, mem sim.Memory) (*RunResult, error) {
	res, err := sim.Run(c.Alloc.Fn, sim.Options{Args: args, Mem: mem, Alloc: c.Alloc})
	if err != nil {
		return nil, err
	}
	return &RunResult{Ret: res.Ret, Cycles: res.Cycles, Instrs: res.Instrs, Trace: res.Trace}, nil
}

// GroundTruth holds the trace-driven thermal simulation of one run —
// the feedback-based reference the paper's analysis is designed to
// replace.
type GroundTruth struct {
	// Steady is the quasi-steady thermal state of sustained execution.
	Steady thermal.State
	// MaxOverTime is each cell's maximum during one trace pass.
	MaxOverTime thermal.State
	// DynEnergy is the dynamic access energy of one pass (J).
	DynEnergy float64
	// Run is the execution the truth was derived from.
	Run *RunResult
}

// GroundTruth executes the program at the given scale and replays the
// trace through the thermal model.
func (c *Compiled) GroundTruth(scale int) (*GroundTruth, error) {
	run, err := c.Run(scale)
	if err != nil {
		return nil, err
	}
	rr, err := sim.Replay(run.Trace, sim.ReplayConfig{
		Tech:      c.tech,
		FP:        c.fp,
		Sustained: true,
	})
	if err != nil {
		return nil, err
	}
	return &GroundTruth{
		Steady:      rr.Steady,
		MaxOverTime: rr.MaxOverTime,
		DynEnergy:   rr.DynEnergy,
		Run:         run,
	}, nil
}

// ProfileGuided executes the program once at the given scale to
// collect measured block/edge frequencies, then re-runs the thermal
// analysis with those in place of the static estimates. This is the
// halfway point between the paper's pure compile-time prediction and
// the feedback-driven flow it wants to replace: one profiling run, no
// thermal simulation.
func (c *Compiled) ProfileGuided(scale int) (*Compiled, error) {
	var args []int64
	var mem sim.Memory
	if c.Program.Setup != nil {
		args, mem = c.Program.Setup(scale)
	}
	res, err := sim.Run(c.Alloc.Fn, sim.Options{Args: args, Mem: mem, CollectProfile: true})
	if err != nil {
		return nil, err
	}
	blocks := make(map[string]float64, len(res.Profile.Blocks))
	for name, n := range res.Profile.Blocks {
		blocks[name] = float64(n)
	}
	edges := make(map[[2]string]float64, len(res.Profile.Edges))
	for key, n := range res.Profile.Edges {
		edges[key] = float64(n)
	}
	opts := c.Opts
	thermalRes, err := tdfaAnalyzeWithProfile(c, blocks, edges, opts)
	if err != nil {
		return nil, err
	}
	nc := *c
	nc.Thermal = thermalRes
	return &nc, nil
}

func tdfaAnalyzeWithProfile(c *Compiled, blocks map[string]float64, edges map[[2]string]float64, opts Options) (*tdfa.Result, error) {
	return tdfa.Analyze(c.Alloc.Fn, tdfa.Config{
		Tech:          c.tech,
		FP:            c.fp,
		Alloc:         c.Alloc,
		Solver:        opts.Solver,
		Delta:         opts.Delta,
		MaxIter:       opts.MaxIter,
		Kappa:         opts.Kappa,
		JoinOp:        opts.JoinOp,
		WithLeakage:   opts.WithLeakage,
		NoWarmStart:   opts.NoWarmStart,
		DefaultTrip:   opts.DefaultTrip,
		ProfileBlocks: blocks,
		ProfileEdges:  edges,
	})
}

// Accuracy quantifies how well the compile-time prediction matches the
// measured ground truth.
type Accuracy struct {
	// RMSE and MAE are per-cell temperature errors in kelvin.
	RMSE, MAE float64
	// Pearson is the per-cell linear correlation.
	Pearson float64
	// Top4Overlap is the fraction of the 4 hottest measured cells the
	// prediction also ranks among its 4 hottest.
	Top4Overlap float64
	// PeakError is predicted minus measured peak temperature (K).
	PeakError float64
}

// Validate compares the analysis prediction against ground truth at the
// given scale.
func (c *Compiled) Validate(scale int) (*Accuracy, *GroundTruth, error) {
	if c.Thermal == nil {
		return nil, nil, fmt.Errorf("thermflow: compile ran with SkipAnalysis")
	}
	gt, err := c.GroundTruth(scale)
	if err != nil {
		return nil, nil, err
	}
	pred := []float64(c.Thermal.Mean)
	ref := []float64(gt.Steady)
	acc := &Accuracy{
		RMSE:        metrics.RMSE(pred, ref),
		MAE:         metrics.MAE(pred, ref),
		Pearson:     metrics.Pearson(pred, ref),
		Top4Overlap: metrics.TopKOverlap([]float64(c.Thermal.Peak), []float64(gt.Steady), 4),
		PeakError:   c.Thermal.Peak.Max() - gt.Steady.Max(),
	}
	return acc, gt, nil
}
