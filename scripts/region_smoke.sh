#!/bin/sh
# CI smoke test for the region solve plane: start two thermflowd
# backends and one thermflowgate, generate a mega-module, and submit it
# as a kind:"region" v2 job — the gateway partitions the CFG, fans the
# per-region fixpoint steps out across both backends (exchanging only
# boundary thermal states between rounds) and merges the fragments.
# The merged result must equal, field for field, the same spec solved
# whole on a single backend: at σ=0 the distributed solve is exact, not
# approximate. Also asserts the fan-out genuinely hit both backends.
# Fast (<60 s).
set -eu

port="${PORT:-18467}"
p1=$((port + 1))
p2=$((port + 2))
gw="http://127.0.0.1:$port"
b1="http://127.0.0.1:$p1"
b2="http://127.0.0.1:$p2"
tmp="$(mktemp -d)"
gpid=""
bpid1=""
bpid2=""
trap 'kill "${gpid:-}" "${bpid1:-}" "${bpid2:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/thermflowd" ./cmd/thermflowd
go build -o "$tmp/thermflowgate" ./cmd/thermflowgate
go build -o "$tmp/tdfa" ./cmd/tdfa

"$tmp/thermflowd" -addr "127.0.0.1:$p1" >"$tmp/b1.log" 2>&1 &
bpid1=$!
"$tmp/thermflowd" -addr "127.0.0.1:$p2" >"$tmp/b2.log" 2>&1 &
bpid2=$!
"$tmp/thermflowgate" -addr "127.0.0.1:$port" -backends "$b1,$b2" \
	-state-dir "$tmp/gwstate" \
	-health-interval 300ms -eject-after 2 >"$tmp/gw.log" 2>&1 &
gpid=$!

i=0
until curl -s "$gw/gateway/backends" 2>/dev/null | grep -q '"ring_backends": *2'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && {
		echo "gateway pool did not come up"
		cat "$tmp/gw.log" "$tmp/b1.log" "$tmp/b2.log" 2>/dev/null
		exit 1
	}
	sleep 0.2
done
echo "smoke: gateway up, 2 backends on the ring"

# One mega-module, JSON-escaped into a v2 job request. 8 arms of
# depth-2 loop nests give the partitioner a DAG wide enough to spread;
# 16 regions put enough distinct ring keys in play that both backends
# deterministically own some (the split is fixed by the backend URLs
# and the job ID, both stable here).
"$tmp/tdfa" -mega 8,2 -seed 7 -emit >"$tmp/mega.ir"
src="$(awk 'BEGIN{ORS="\\n"} {gsub(/\\/, "\\\\"); gsub(/"/, "\\\""); print}' "$tmp/mega.ir")"
opts='{"solver":"region","regions":16}'
printf '{"kind":"region","program":"%s","options":%s}' "$src" "$opts" >"$tmp/region.json"
printf '{"program":"%s","options":%s}' "$src" "$opts" >"$tmp/plain.json"

# Region fan-out through the gateway: synchronous, answers a terminal
# JobStatus.
curl -s -X POST -H 'Content-Type: application/json' \
	--data-binary "@$tmp/region.json" "$gw/v2/jobs" >"$tmp/fanout.json"
grep -q '"state": *"done"' "$tmp/fanout.json" ||
	{ echo "smoke: region job did not finish done:"; cat "$tmp/fanout.json"; exit 1; }
echo "smoke: region job done through the gateway"

# Both backends stepped regions for it.
for lg in "$tmp/b1.log" "$tmp/b2.log"; do
	grep -q '/v2/regions/solve' "$lg" ||
		{ echo "smoke: $lg saw no region-solve traffic - no fan-out?"; exit 1; }
done
echo "smoke: fan-out spread across both backends"

# Monolithic reference: the identical spec as a plain job on backend 1.
id="$(curl -s -X POST -H 'Content-Type: application/json' \
	--data-binary "@$tmp/plain.json" "$b1/v2/jobs" |
	sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')"
[ -n "$id" ] || { echo "smoke: plain submit returned no id"; exit 1; }
curl -s "$b1/v2/jobs/$id/wait?timeout_ms=120000" >"$tmp/whole.json"
grep -q '"state": *"done"' "$tmp/whole.json" ||
	{ echo "smoke: plain job did not finish done:"; cat "$tmp/whole.json"; exit 1; }

# The job IDs must agree (same spec, same content identity), and every
# analysis output field must match exactly.
fid="$(sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' "$tmp/fanout.json")"
[ "$fid" = "$id" ] || { echo "smoke: job identity diverged: $fid vs $id"; exit 1; }
for field in peak_temp_k final_delta_k iterations block_sweeps converged reg_peak_k hot_spots; do
	a="$(sed -n "s/.*\"$field\": *\(\[[^]]*\]\|[^,}]*\).*/\1/p" "$tmp/fanout.json" | head -1)"
	b="$(sed -n "s/.*\"$field\": *\(\[[^]]*\]\|[^,}]*\).*/\1/p" "$tmp/whole.json" | head -1)"
	[ -n "$a" ] || { echo "smoke: field $field missing from fan-out result"; exit 1; }
	[ "$a" = "$b" ] || {
		echo "smoke: field $field differs: fan-out=$a monolithic=$b"
		exit 1
	}
done
echo "smoke: fan-out result identical to single-backend monolithic solve"

echo "smoke: OK (region fan-out across 2 backends == monolithic, exact mode)"
