#!/bin/sh
# CI smoke test for the durable job plane: start one thermflowd with
# -job-log-dir and -cache-dir, submit the 99-job sweep through
# POST /v2/jobs, wait for every job, SIGKILL the daemon (no orderly
# shutdown: the WAL tail is whatever fsync left behind), restart it on
# the same directories, and assert every pre-crash job ID resolves to
# the same terminal result. Then the gateway half: with R=1
# replication, kill a job's owning backend permanently and assert the
# gateway still answers the ID from the ring successor's replica
# shelf. Fast (<60 s).
set -eu

port="${PORT:-18461}"
p1=$((port + 1))
p2=$((port + 2))
gwport=$((port + 3))
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
dpid=""
gpid=""
bpid1=""
bpid2=""
# dpid empties mid-script; loop so a blank never aborts the kill.
trap 'for p in $dpid $gpid $bpid1 $bpid2; do kill "$p" 2>/dev/null || true; done; rm -rf "$tmp"' EXIT

go build -o "$tmp/thermflowd" ./cmd/thermflowd
go build -o "$tmp/thermflowgate" ./cmd/thermflowgate

start_daemon() {
	"$tmp/thermflowd" -addr "127.0.0.1:$port" \
		-cache-dir "$tmp/cache" -job-log-dir "$tmp/joblog" \
		-job-snapshot-every 32 >>"$tmp/d.log" 2>&1 &
	dpid=$!
	i=0
	until curl -s "$base/v1/kernels" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -ge 50 ] && { echo "thermflowd did not come up"; cat "$tmp/d.log"; exit 1; }
		sleep 0.2
	done
}

start_daemon
echo "smoke: thermflowd up with -job-log-dir"

# 99-job sweep, one POST /v2/jobs each, so every job gets a durable ID.
kernels="dot saxpy fir matmul bubblesort histogram checksum scaledsum transpose prefixsum fib"
: >"$tmp/ids.txt"
for k in $kernels; do
	for regs in 56 57 58 59 60 61 62 63 64; do
		body="{\"kernel\":\"$k\",\"options\":{\"num_regs\":$regs}}"
		id="$(curl -s -X POST -H 'Content-Type: application/json' -d "$body" "$base/v2/jobs" |
			sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')"
		[ -n "$id" ] || { echo "smoke: submit $k/$regs returned no id"; exit 1; }
		echo "$id" >>"$tmp/ids.txt"
	done
done
nids="$(sort -u "$tmp/ids.txt" | wc -l | tr -d ' ')"
[ "$nids" = "99" ] || { echo "smoke: $nids distinct ids, want 99"; exit 1; }
echo "smoke: 99 jobs submitted"

# Wait for each to finish, recording the terminal state + energy.
: >"$tmp/before.txt"
while read -r id; do
	st=""
	i=0
	while [ "$st" != "done" ] && [ "$st" != "failed" ]; do
		i=$((i + 1))
		[ "$i" -ge 60 ] && { echo "smoke: job $id never finished (state=$st)"; exit 1; }
		st="$(curl -s "$base/v2/jobs/$id/wait?timeout_ms=2000" |
			sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p')"
	done
	energy="$(curl -s "$base/v2/jobs/$id" | sed -n 's/.*"energy": *\([0-9.e+-]*\).*/\1/p')"
	echo "$id $st $energy" >>"$tmp/before.txt"
done <"$tmp/ids.txt"
ndone="$(grep -c ' done ' "$tmp/before.txt" || true)"
echo "smoke: all 99 jobs terminal ($ndone done)"

# The crash: SIGKILL, no goodbye. Whatever the WAL holds is the truth.
kill -9 "$dpid" 2>/dev/null || true
wait "$dpid" 2>/dev/null || true
dpid=""
echo "smoke: thermflowd SIGKILLed"

start_daemon
echo "smoke: thermflowd restarted on the same -job-log-dir"

# Every pre-crash ID must resolve to the identical terminal result.
: >"$tmp/after.txt"
while read -r id st energy; do
	code="$(curl -s -o "$tmp/one.json" -w '%{http_code}' "$base/v2/jobs/$id")"
	[ "$code" = "200" ] || {
		echo "smoke: job $id vanished across restart (HTTP $code)"
		cat "$tmp/d.log"
		exit 1
	}
	nst="$(sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' "$tmp/one.json")"
	nenergy="$(sed -n 's/.*"energy": *\([0-9.e+-]*\).*/\1/p' "$tmp/one.json")"
	[ "$nst" = "$st" ] || { echo "smoke: job $id state $st -> $nst across restart"; exit 1; }
	[ "$nenergy" = "$energy" ] || { echo "smoke: job $id energy $energy -> $nenergy across restart"; exit 1; }
	echo "$id $nst $nenergy" >>"$tmp/after.txt"
done <"$tmp/before.txt"
cmp -s "$tmp/before.txt" "$tmp/after.txt" ||
	{ echo "smoke: result tables differ across restart"; diff "$tmp/before.txt" "$tmp/after.txt" || true; exit 1; }
echo "smoke: all 99 job IDs resolve identically after the crash"
kill "$dpid" 2>/dev/null || true
wait "$dpid" 2>/dev/null || true
dpid=""

# Gateway replication: two backends, R=1. Run a job to done through
# the gateway, kill whichever backend owns it — permanently — and the
# gateway must still answer the ID from the successor's replica shelf.
b1="http://127.0.0.1:$p1"
b2="http://127.0.0.1:$p2"
gw="http://127.0.0.1:$gwport"
"$tmp/thermflowd" -addr "127.0.0.1:$p1" >"$tmp/b1.log" 2>&1 &
bpid1=$!
"$tmp/thermflowd" -addr "127.0.0.1:$p2" >"$tmp/b2.log" 2>&1 &
bpid2=$!
"$tmp/thermflowgate" -addr "127.0.0.1:$gwport" -backends "$b1,$b2" \
	-replicas 1 -health-interval 300ms -eject-after 2 >"$tmp/gw.log" 2>&1 &
gpid=$!
i=0
until curl -s "$gw/gateway/backends" 2>/dev/null | grep -q '"ring_backends": *2'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && { echo "smoke: gateway pool did not come up"; cat "$tmp/gw.log"; exit 1; }
	sleep 0.2
done

body='{"kernel":"matmul","options":{"policy":"chessboard"}}'
id="$(curl -s -X POST -H 'Content-Type: application/json' -d "$body" "$gw/v2/jobs" |
	sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')"
[ -n "$id" ] || { echo "smoke: submit via gateway returned no id"; exit 1; }
st=""
i=0
while [ "$st" != "done" ]; do
	i=$((i + 1))
	[ "$i" -ge 30 ] && { echo "smoke: gateway job never finished (state=$st)"; exit 1; }
	st="$(curl -s "$gw/v2/jobs/$id/wait?timeout_ms=2000" |
		sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p')"
done

# Which backend owns it? Kill that one; the replica lives on the other.
owner=""
if [ "$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Probe: owner' "$b1/v2/jobs/$id")" = "200" ] &&
	! curl -s -i "$b1/v2/jobs/$id" | grep -qi '^x-thermflow-replica:'; then
	owner="$bpid1"
else
	owner="$bpid2"
fi
# Give the async replica push a moment to land before the kill.
sleep 1
kill -9 "$owner" 2>/dev/null || true
i=0
until curl -s "$gw/gateway/backends" | grep -q '"ring_backends": *1'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && { echo "smoke: dead owner never ejected"; exit 1; }
	sleep 0.2
done

resp="$(curl -s -i "$gw/v2/jobs/$id")"
printf '%s' "$resp" | grep -q '^HTTP/[0-9.]* 200' ||
	{ echo "smoke: job $id lost with its owner dead:"; printf '%s\n' "$resp"; cat "$tmp/gw.log"; exit 1; }
printf '%s' "$resp" | grep -qi '^x-thermflow-replica:' ||
	{ echo "smoke: answer for $id not served from the replica shelf:"; printf '%s\n' "$resp"; exit 1; }
printf '%s' "$resp" | grep -q '"state": *"done"' ||
	{ echo "smoke: replica answer not done:"; printf '%s\n' "$resp"; exit 1; }
echo "smoke: gateway answered the dead owner's job from the ring successor (R=1)"

echo "smoke: OK (WAL replay across SIGKILL, replica failover)"
