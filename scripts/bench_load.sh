#!/bin/sh
# Load benchmark: start two thermflowd backends behind one
# thermflowgate and drive an open-loop arrival-rate sweep with
# cmd/thermload, writing BENCH_LOAD.json (per-stage offered rate,
# achieved throughput, p50/p95/p99 latency, error attribution). The
# -check gate makes this double as the CI `make smoke-load` step: it
# fails on any 5xx or transport error, or an empty/zero-latency stage.
#
# When the committed baseline report exists (scripts/baseline_load.json
# by default), the gate also diffs the fresh run against it: a stage
# whose p99 regresses more than 2x past the baseline (above thermload's
# absolute 25 ms floor, so single-digit-millisecond jitter never
# fails), or that shows transport errors the baseline did not have,
# fails CI. Regenerate the baseline with
# `OUT=scripts/baseline_load.json make bench-load` when a deliberate
# change moves the latency envelope.
#
# Tunables (environment):
#   PORT       base port (default 18470)
#   STAGES     offered rates in req/s     (default "25,50,100")
#   STAGE_SECS seconds per stage          (default 5)
#   OUT        report path                (default BENCH_LOAD.json)
#   BASELINE   committed report to diff   (default scripts/baseline_load.json;
#              "" or a missing file skips the diff)
set -eu

port="${PORT:-18470}"
stages="${STAGES:-25,50,100}"
stage_secs="${STAGE_SECS:-5}"
out="${OUT:-BENCH_LOAD.json}"
baseline="${BASELINE:-scripts/baseline_load.json}"
p1=$((port + 1))
p2=$((port + 2))
gw="http://127.0.0.1:$port"
b1="http://127.0.0.1:$p1"
b2="http://127.0.0.1:$p2"
tmp="$(mktemp -d)"
gpid=""
bpid1=""
bpid2=""
trap 'kill "${gpid:-}" "${bpid1:-}" "${bpid2:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/thermflowd" ./cmd/thermflowd
go build -o "$tmp/thermflowgate" ./cmd/thermflowgate
go build -o "$tmp/thermload" ./cmd/thermload

"$tmp/thermflowd" -addr "127.0.0.1:$p1" >"$tmp/b1.log" 2>&1 &
bpid1=$!
"$tmp/thermflowd" -addr "127.0.0.1:$p2" >"$tmp/b2.log" 2>&1 &
bpid2=$!
"$tmp/thermflowgate" -addr "127.0.0.1:$port" -backends "$b1,$b2" \
	-health-interval 300ms >"$tmp/gw.log" 2>&1 &
gpid=$!

# Readiness: both backends on the ring.
i=0
until curl -s "$gw/gateway/backends" 2>/dev/null | grep -q '"ring_backends": *2'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && {
		echo "bench_load: gateway pool did not come up"
		cat "$tmp/gw.log" "$tmp/b1.log" "$tmp/b2.log" 2>/dev/null
		exit 1
	}
	sleep 0.2
done
echo "bench_load: gateway up, 2 backends on the ring"

baseline_flag=""
if [ -n "$baseline" ] && [ -f "$baseline" ] && [ "$baseline" != "$out" ]; then
	baseline_flag="-baseline $baseline"
	echo "bench_load: diffing against baseline $baseline"
fi
# $baseline_flag is deliberately unquoted: empty means no extra args.
# shellcheck disable=SC2086
"$tmp/thermload" -target "$gw" -stages "$stages" \
	-stage-duration "${stage_secs}s" -out "$out" -check $baseline_flag

# The observability plane saw the traffic: both the gateway and a
# backend expose non-trivial /metrics.
curl -s "$gw/metrics" | grep -q 'thermflow_http_requests_total{route="/v1/compile"' ||
	{ echo "bench_load: gateway /metrics missing request series"; curl -s "$gw/metrics" | head -40; exit 1; }
curl -s "$b1/metrics" | grep -q 'thermflow_solver_runs_total' ||
	{ echo "bench_load: backend /metrics missing solver series"; curl -s "$b1/metrics" | head -40; exit 1; }
echo "bench_load: /metrics live on gateway and backends"

echo "bench_load: OK ($out written)"
