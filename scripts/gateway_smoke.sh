#!/bin/sh
# CI smoke test for thermflowgate, the consistent-hashing shard
# gateway: start two thermflowd backends and one gateway, run the
# 99-job sweep through the gateway (asserting it spread across both
# shards), exercise ID-routed status reads, then run a second 99-job
# sweep and kill one backend in the middle of it — the sweep must
# still complete with every job ID answered exactly once, courtesy of
# the gateway's failover re-dispatch. Finally, drain a backend and
# restart the gateway on the same -state-dir: the drain decision must
# survive the restart. Fast (<60 s).
set -eu

port="${PORT:-18447}"
p1=$((port + 1))
p2=$((port + 2))
gw="http://127.0.0.1:$port"
b1="http://127.0.0.1:$p1"
b2="http://127.0.0.1:$p2"
tmp="$(mktemp -d)"
gpid=""
bpid1=""
bpid2=""
trap 'kill "${gpid:-}" "${bpid1:-}" "${bpid2:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/thermflowd" ./cmd/thermflowd
go build -o "$tmp/thermflowgate" ./cmd/thermflowgate
go build -o "$tmp/experiments" ./cmd/experiments

"$tmp/thermflowd" -addr "127.0.0.1:$p1" >"$tmp/b1.log" 2>&1 &
bpid1=$!
"$tmp/thermflowd" -addr "127.0.0.1:$p2" >"$tmp/b2.log" 2>&1 &
bpid2=$!
"$tmp/thermflowgate" -addr "127.0.0.1:$port" -backends "$b1,$b2" \
	-state-dir "$tmp/gwstate" \
	-health-interval 300ms -eject-after 2 >"$tmp/gw.log" 2>&1 &
gpid=$!

# Readiness: the gateway is up with both backends on the ring.
i=0
until curl -s "$gw/gateway/backends" 2>/dev/null | grep -q '"ring_backends": *2'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && {
		echo "gateway pool did not come up"
		cat "$tmp/gw.log" "$tmp/b1.log" "$tmp/b2.log" 2>/dev/null
		exit 1
	}
	sleep 0.2
done
echo "smoke: gateway up, 2 backends on the ring"

# The 99-job sweep through the gateway.
"$tmp/experiments" -addr "$gw" >"$tmp/sweep1.txt"
summary="$(tail -1 "$tmp/sweep1.txt")"
echo "smoke: $summary"
printf '%s' "$summary" | grep -q "jobs=99 errors=0" ||
	{ echo "smoke: sweep through gateway failed: $summary"; exit 1; }

# Both shards compiled part of it.
for b in "$b1" "$b2"; do
	misses="$(curl -s "$b/v1/cache" | sed -n 's/.*"misses": *\([0-9]*\).*/\1/p' | head -1)"
	[ -n "$misses" ] && [ "$misses" -gt 0 ] ||
		{ echo "smoke: backend $b compiled nothing (misses=$misses) - no sharding?"; exit 1; }
done
echo "smoke: sweep spread across both shards"

# ID-routed status: submit via the gateway, wait to done, then resolve
# the ID through the gateway — it must find the job on whichever
# backend owns it, and exactly one backend owns it. (The ring
# successor may also answer from its replica shelf; those answers are
# marked X-Thermflow-Replica and are copies, not ownership.)
body='{"kernel":"matmul","options":{"policy":"chessboard"}}'
id="$(curl -s -X POST -H 'Content-Type: application/json' -d "$body" "$gw/v2/jobs" |
	sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')"
[ -n "$id" ] || { echo "smoke: submit via gateway returned no id"; exit 1; }
state=""
i=0
while [ "$state" != "done" ]; do
	i=$((i + 1))
	[ "$i" -ge 30 ] && { echo "smoke: job never finished (state=$state)"; exit 1; }
	state="$(curl -s "$gw/v2/jobs/$id/wait?timeout_ms=2000" |
		sed -n 's/.*"state": *"\([a-z]*\)".*/\1p/p' | sed 's/p$//')"
done
gwread="$(curl -s -o /dev/null -w '%{http_code}' "$gw/v2/jobs/$id")"
[ "$gwread" = "200" ] || { echo "smoke: GET via gateway -> $gwread, want 200"; exit 1; }
holders=0
for b in "$b1" "$b2"; do
	curl -s -i "$b/v2/jobs/$id" >"$tmp/hold.txt"
	grep -q '^HTTP/[0-9.]* 200' "$tmp/hold.txt" || continue
	grep -qi '^x-thermflow-replica:' "$tmp/hold.txt" && continue
	holders=$((holders + 1))
done
[ "$holders" = "1" ] || { echo "smoke: job $id owned by $holders backends, want exactly 1"; exit 1; }
echo "smoke: GET /v2/jobs/{id} resolved on the owning shard"

# Second sweep, cold, with one backend killed mid-flight: build a
# 99-job matrix as an ID-keyed v2 batch so exactly-once is directly
# countable from the merged stream. no_warm_start + small kappa + a
# tight delta slow each compile to hundreds of raw Fig. 2 sweeps,
# keeping the batch in flight for seconds (~3 s on one CI core) so the
# kill at 0.2 s lands well inside the stream.
curl -s -X DELETE "$gw/v1/cache" >/dev/null
kernels="dot saxpy fir matmul bubblesort histogram checksum scaledsum transpose prefixsum fib"
jobs=""
for k in $kernels; do
	for regs in 56 57 58 59 60 61 62 63 64; do
		jobs="$jobs{\"kernel\":\"$k\",\"options\":{\"num_regs\":$regs,\"no_warm_start\":true,\"kappa\":5,\"max_iter\":3000,\"delta\":0.0005}},"
	done
done
printf '{"jobs":[%s]}' "${jobs%,}" >"$tmp/batch.json"
njobs="$(grep -o '"kernel"' "$tmp/batch.json" | wc -l | tr -d ' ')"
[ "$njobs" = "99" ] || { echo "smoke: built $njobs jobs, want 99"; exit 1; }

curl -s -N -X POST -H 'Content-Type: application/json' \
	--data-binary "@$tmp/batch.json" "$gw/v2/batch" >"$tmp/stream.ndjson" &
cpid=$!
sleep 0.2
kill -9 "$bpid2" 2>/dev/null || true
echo "smoke: killed backend 2 mid-sweep"
wait "$cpid" || { echo "smoke: batch stream curl failed"; exit 1; }

lines="$(grep -c '"id"' "$tmp/stream.ndjson" || true)"
distinct="$(sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' "$tmp/stream.ndjson" | sort -u | wc -l | tr -d ' ')"
errors="$(grep -c '"error"' "$tmp/stream.ndjson" || true)"
[ "$lines" = "99" ] || { echo "smoke: $lines items streamed, want 99 (exactly once)"; cat "$tmp/gw.log"; exit 1; }
[ "$distinct" = "99" ] || { echo "smoke: $distinct distinct ids, want 99"; exit 1; }
[ "$errors" = "0" ] || { echo "smoke: $errors items errored:"; grep '"error"' "$tmp/stream.ndjson"; exit 1; }
grep -q "re-dispatching" "$tmp/gw.log" ||
	{ echo "smoke: the kill landed after the stream finished - failover was not exercised (machine too fast? raise max_iter)"; cat "$tmp/gw.log"; exit 1; }
echo "smoke: 99 jobs answered exactly once across the kill (99 items, 99 ids, 0 errors, failover re-dispatched)"

# The gateway noticed: backend 2 is off the ring.
i=0
until curl -s "$gw/gateway/backends" | grep -q '"ring_backends": *1'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && { echo "smoke: dead backend never ejected"; curl -s "$gw/gateway/backends"; exit 1; }
	sleep 0.2
done
echo "smoke: dead backend ejected from the ring"

# Drain survives a gateway restart: drain backend 1, bounce the
# gateway on the same -state-dir, and the restarted gateway must still
# hold backend 1 off the assignment ring.
curl -s -o /dev/null -X POST "$gw/gateway/drain?backend=$b1"
curl -s "$gw/gateway/backends" | grep -q '"draining": *true' ||
	{ echo "smoke: drain did not register"; curl -s "$gw/gateway/backends"; exit 1; }
kill "$gpid" 2>/dev/null || true
wait "$gpid" 2>/dev/null || true
"$tmp/thermflowgate" -addr "127.0.0.1:$port" -backends "$b1,$b2" \
	-state-dir "$tmp/gwstate" \
	-health-interval 300ms -eject-after 2 >>"$tmp/gw.log" 2>&1 &
gpid=$!
i=0
until curl -s "$gw/gateway/backends" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && { echo "smoke: gateway did not restart"; cat "$tmp/gw.log"; exit 1; }
	sleep 0.2
done
curl -s "$gw/gateway/backends" | grep -q '"draining": *true' ||
	{ echo "smoke: drain forgotten across gateway restart"; curl -s "$gw/gateway/backends"; exit 1; }
echo "smoke: drained backend stayed drained across the gateway restart"

echo "smoke: OK (gateway sharding, ID routing, mid-sweep failover, durable drain)"
