#!/bin/sh
# Measures the persistent-cache warm-restart win (ROADMAP "cross-kernel
# cache persistence"): starts thermflowd with a disk cache tier, runs
# the full cmd/experiments sweep cold, kills the server, restarts it
# over the same -cache-dir, and repeats the sweep. The restarted
# process has an empty memory tier — every hit on the second run is
# the disk tier deserializing a persisted result instead of compiling.
# Records both wall-clocks, the disk hit count and the speedup in
# BENCH_persist.json, and fails unless the restart-warm run resolves
# >= 90% of jobs from disk at >= 5x the cold wall-clock.
#
# Usage: scripts/bench_persist.sh [output.json]
set -eu

out="${1:-BENCH_persist.json}"
port="${PORT:-18429}"
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
cache="$tmp/cache"
spid=""
trap 'kill "${spid:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/thermflowd" ./cmd/thermflowd
go build -o "$tmp/experiments" ./cmd/experiments

# The readiness probe must not touch the cache: run 2's disk-hit
# count is the measurement, so warming any entry before it would
# inflate the numbers. /v1/kernels compiles nothing.
start_server() {
	"$tmp/thermflowd" -addr "127.0.0.1:$port" -cache-dir "$cache" >>"$tmp/thermflowd.log" 2>&1 &
	spid=$!
	i=0
	until curl -sf "$base/v1/kernels" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -ge 50 ] && { echo "thermflowd did not come up"; cat "$tmp/thermflowd.log"; exit 1; }
		sleep 0.2
	done
}

stop_server() {
	kill "$spid" 2>/dev/null || true
	wait "$spid" 2>/dev/null || true
	spid=""
}

start_server
"$tmp/experiments" -addr "$base" | tee "$tmp/run1.txt" | tail -1

# Hard restart: the memory tier dies with the process; only the disk
# tier survives.
stop_server
start_server

"$tmp/experiments" -addr "$base" | tee "$tmp/run2.txt" | tail -1

field() { tail -1 "$1" | sed -n "s/.*[ =]$2=\([0-9]*\).*/\1/p"; }
run1_ms="$(field "$tmp/run1.txt" wall_ms)"
run2_ms="$(field "$tmp/run2.txt" wall_ms)"
jobs="$(field "$tmp/run2.txt" jobs)"
cached2="$(field "$tmp/run2.txt" cached)"
disk_hits="$(field "$tmp/run2.txt" disk_hits)"

[ -n "$disk_hits" ] || { echo "could not parse disk_hits from run 2"; exit 1; }

# Acceptance: >= 90% of the repeated sweep served from the disk tier,
# >= 5x faster than the cold run.
awk -v hits="$disk_hits" -v jobs="$jobs" 'BEGIN { exit !(hits >= 0.9 * jobs) }' || {
	echo "restart-warm run served only $disk_hits/$jobs jobs from disk (need >= 90%)"
	exit 1
}
awk -v a="$run1_ms" -v b="$run2_ms" 'BEGIN { exit !(b > 0 && a / b >= 5) }' || {
	echo "restart-warm speedup $run1_ms ms -> $run2_ms ms is below 5x"
	exit 1
}

cat > "$out" <<EOF
{
  "jobs_per_run": $jobs,
  "cold_run_ms": $run1_ms,
  "restart_warm_run_ms": $run2_ms,
  "restart_warm_cached": $cached2,
  "restart_warm_disk_hits": $disk_hits,
  "disk_hit_rate": $(awk -v h="$disk_hits" -v j="$jobs" 'BEGIN { printf "%.3f", (j > 0 ? h / j : 0) }'),
  "speedup_restart_warm": $(awk -v a="$run1_ms" -v b="$run2_ms" 'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')
}
EOF
echo "wrote $out"
cat "$out"
