#!/bin/sh
# Runs the mega-module solver benchmarks and records the region solve
# plane's scorecard in BENCH_region.json: per-benchmark ns/op and
# rounds-to-fixpoint for the monolithic dense reference, the monolithic
# sparse worklist, the partitioned exact-mode solve and the partitioned
# σ-slack Jacobi solve, plus the derived region-vs-monolithic speedups
# and the host's CPU budget for context.
#
# Provenance: the report always records the host cpu count and
# GOMAXPROCS, and always records rounds-to-fixpoint (a per-core-valid
# algorithmic fact: slack mode trades a bounded error budget for far
# fewer synchronization rounds). The parallel speedup fields are
# refused outright on hosts with fewer than 4 cpus — exact-mode region
# solving is DAG-wave parallelism, and time-slicing the waves on one
# or two cores measures scheduler overhead, not the win. CI re-runs
# this on a multi-core runner, where the fields are emitted.
#
# Usage: scripts/bench_region.sh [output.json]
set -eu

out="${1:-BENCH_region.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

cpus="$(nproc 2>/dev/null || echo 1)"
gomaxprocs="${GOMAXPROCS:-$cpus}"

go test . -run '^$' \
	-bench 'BenchmarkMegaSolver' \
	-benchmem -count 1 -timeout 20m | tee "$raw"

awk -v cpus="$cpus" -v gomaxprocs="$gomaxprocs" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters[name] = $2
	ns[name] = $3
	for (i = 4; i < NF; i++)
		if ($(i + 1) == "rounds") rounds[name] = $i
	n++
}
END {
	printf "{\n  \"cpus\": %d,\n  \"gomaxprocs\": %d,\n  \"benchmarks\": [\n", cpus, gomaxprocs
	i = 0
	for (name in ns) order[++i] = name
	# Emit in a stable order (POSIX awk has no asort).
	m = i
	for (a = 1; a <= m; a++)
		for (b = a + 1; b <= m; b++)
			if (order[b] < order[a]) { t = order[a]; order[a] = order[b]; order[b] = t }
	for (a = 1; a <= m; a++) {
		name = order[a]
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"rounds\": %s}%s\n", \
			name, iters[name], ns[name], rounds[name], (a < m ? "," : "")
	}
	printf "  ],\n"
	sd = ns["BenchmarkMegaSolverDense"]
	ss = ns["BenchmarkMegaSolverSparse"]
	rx = ns["BenchmarkMegaSolverRegion"]
	rs = ns["BenchmarkMegaSolverRegionSlack"]
	# Rounds are an algorithmic fact, valid on any host: exact mode
	# matches dense sweep for sweep; slack mode converges in far fewer
	# exchange rounds.
	printf "  \"rounds_monolithic_dense\": %s,\n", rounds["BenchmarkMegaSolverDense"]
	printf "  \"rounds_monolithic_sparse\": %s,\n", rounds["BenchmarkMegaSolverSparse"]
	printf "  \"rounds_region_exact\": %s,\n", rounds["BenchmarkMegaSolverRegion"]
	printf "  \"rounds_region_slack\": %s,\n", rounds["BenchmarkMegaSolverRegionSlack"]
	if (cpus >= 4) {
		printf "  \"workers\": %d,\n", gomaxprocs
		printf "  \"speedup_region_vs_monolithic_sparse\": %.2f,\n", (rx > 0 ? ss / rx : 0)
		printf "  \"speedup_region_vs_monolithic_dense\": %.2f,\n", (rx > 0 ? sd / rx : 0)
		printf "  \"speedup_region_slack_vs_monolithic_sparse\": %.2f\n", (rs > 0 ? ss / rs : 0)
	} else {
		printf "  \"region_speedups_omitted\": \"host has %d cpu(s): DAG-wave parallelism is unmeasurable; re-run on a >=4-core machine\"\n", cpus
	}
	printf "}\n"
}' "$raw" > "$out"

echo "wrote $out (cpus=$cpus gomaxprocs=$gomaxprocs)"
