#!/bin/sh
# Measures the cross-process cache-sharing win of thermflowd (ROADMAP
# "result serving"): starts one server, runs the cmd/experiments sweep
# against it from two separate processes, and records both wall-clocks
# plus the second run's cache hits in BENCH_serve.json. The second run
# resolves almost entirely from the server's content-keyed cache, so
# its wall-clock is the serving overhead alone.
#
# Usage: scripts/bench_serve.sh [output.json]
set -eu

out="${1:-BENCH_serve.json}"
port="${PORT:-18427}"
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
spid=""
trap 'kill "${spid:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/thermflowd" ./cmd/thermflowd
go build -o "$tmp/experiments" ./cmd/experiments

"$tmp/thermflowd" -addr "127.0.0.1:$port" >"$tmp/thermflowd.log" 2>&1 &
spid=$!

# Wait for the listener.
i=0
until "$tmp/experiments" -addr "$base" -quick >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && { echo "thermflowd did not come up"; cat "$tmp/thermflowd.log"; exit 1; }
	sleep 0.2
done

# The readiness probe warmed part of the cache; clear it so run 1 is a
# true cold run.
"$tmp/experiments" -addr "$base" -reset-cache >/dev/null

# The sweep prints its own client-measured wall-clock (wall_ms=N),
# which excludes process startup and is what the cache comparison is
# about.
"$tmp/experiments" -addr "$base" | tee "$tmp/run1.txt" | tail -1
"$tmp/experiments" -addr "$base" | tee "$tmp/run2.txt" | tail -1

field() { tail -1 "$1" | sed -n "s/.*$2=\([0-9]*\).*/\1/p"; }
run1_ms="$(field "$tmp/run1.txt" wall_ms)"
run2_ms="$(field "$tmp/run2.txt" wall_ms)"
jobs="$(field "$tmp/run2.txt" jobs)"
cached2="$(field "$tmp/run2.txt" cached)"

[ -n "$cached2" ] && [ "$cached2" -gt 0 ] || {
	echo "second run reported no cache hits (cached=$cached2)"; exit 1
}

cat > "$out" <<EOF
{
  "jobs_per_run": $jobs,
  "first_run_ms": $run1_ms,
  "second_run_ms": $run2_ms,
  "second_run_cache_hits": $cached2,
  "speedup_second_run": $(awk -v a="$run1_ms" -v b="$run2_ms" 'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')
}
EOF
echo "wrote $out"
cat "$out"
