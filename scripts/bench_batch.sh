#!/bin/sh
# Runs the batch-engine and solver benchmarks and records the results
# in BENCH_batch.json: per-benchmark ns/op plus derived speedups
# (8-worker vs serial batch, warm cache vs cold, sparse vs dense
# solver) and the host's CPU budget for context.
#
# Provenance: the report always records the host cpu count and
# GOMAXPROCS. On a single-cpu host the worker-scaling "speedup" fields
# are refused outright — an 8-worker pool time-slicing one core
# measures scheduler overhead, not parallel speedup, and a committed
# number like that reads as a (bogus) regression or win. CI re-runs
# this on a multi-core runner, where the fields are emitted.
#
# Usage: scripts/bench_batch.sh [output.json]
set -eu

out="${1:-BENCH_batch.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

cpus="$(nproc 2>/dev/null || echo 1)"
gomaxprocs="${GOMAXPROCS:-$cpus}"

go test . -run '^$' \
	-bench 'BenchmarkCompileBatch|BenchmarkBatchOverlap|BenchmarkSolverDense|BenchmarkSolverSparse' \
	-benchmem -count 1 -timeout 20m | tee "$raw"

awk -v cpus="$cpus" -v gomaxprocs="$gomaxprocs" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters[name] = $2
	ns[name] = $3
	n++
}
END {
	printf "{\n  \"cpus\": %d,\n  \"gomaxprocs\": %d,\n  \"benchmarks\": [\n", cpus, gomaxprocs
	i = 0
	for (name in ns) order[++i] = name
	# Emit in a stable order (POSIX awk has no asort).
	m = i
	for (a = 1; a <= m; a++)
		for (b = a + 1; b <= m; b++)
			if (order[b] < order[a]) { t = order[a]; order[a] = order[b]; order[b] = t }
	for (a = 1; a <= m; a++) {
		name = order[a]
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}%s\n", \
			name, iters[name], ns[name], (a < m ? "," : "")
	}
	printf "  ],\n"
	b1 = ns["BenchmarkCompileBatch/workers=1"]
	b8 = ns["BenchmarkCompileBatch/workers=8"]
	o1 = ns["BenchmarkBatchOverlap/workers=1"]
	o8 = ns["BenchmarkBatchOverlap/workers=8"]
	cold = ns["BenchmarkCompileBatch/workers=8"]
	warm = ns["BenchmarkCompileBatchCached"]
	sd = ns["BenchmarkSolverDense"]
	ss = ns["BenchmarkSolverSparse"]
	if (cpus >= 2) {
		printf "  \"speedup_compile_8_workers_vs_serial\": %.2f,\n", (b8 > 0 ? b1 / b8 : 0)
		printf "  \"speedup_overlap_8_workers_vs_serial\": %.2f,\n", (o8 > 0 ? o1 / o8 : 0)
	} else {
		printf "  \"worker_speedups_omitted\": \"single-cpu host: worker scaling is unmeasurable; re-run on a multi-core machine\",\n"
	}
	# Cache warmth and solver choice are per-core effects — valid on
	# any host.
	printf "  \"speedup_warm_cache_vs_cold\": %.2f,\n", (warm > 0 ? cold / warm : 0)
	printf "  \"speedup_sparse_vs_dense_solver\": %.2f\n", (ss > 0 ? sd / ss : 0)
	printf "}\n"
}' "$raw" > "$out"

echo "wrote $out (cpus=$cpus gomaxprocs=$gomaxprocs)"
