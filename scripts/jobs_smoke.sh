#!/bin/sh
# CI smoke test for the v2 job API and the middleware stack: start
# thermflowd with bearer-token auth and a per-client rate limit, then
# assert 401 without a token, the submit -> poll -> done lifecycle,
# duplicate-submit convergence on one job ID, the ID-keyed batch
# stream, and a 429 (with Retry-After) from a tightly limited second
# instance. Fast (<30 s).
set -eu

port="${PORT:-18437}"
port2=$((port + 1))
base="http://127.0.0.1:$port"
base2="http://127.0.0.1:$port2"
token="smoke-$$-token"
tmp="$(mktemp -d)"
spid=""
spid2=""
trap 'kill "${spid:-}" "${spid2:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

printf '# smoke tokens\n%s\n' "$token" >"$tmp/tokens"
go build -o "$tmp/thermflowd" ./cmd/thermflowd

"$tmp/thermflowd" -addr "127.0.0.1:$port" -auth-token-file "$tmp/tokens" \
	-rate-limit 200 -rate-burst 400 >"$tmp/thermflowd.log" 2>&1 &
spid=$!

# curl helpers: code prints only the status, auth adds the bearer token.
code() { curl -s -o /dev/null -w '%{http_code}' "$@"; }
authcurl() { curl -s -H "Authorization: Bearer $token" "$@"; }

# Readiness doubles as the 401 assertion: an unauthenticated probe must
# be answered (not refused) and rejected.
i=0
until [ "$(code "$base/v1/kernels" || true)" = "401" ]; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && { echo "thermflowd did not come up"; cat "$tmp/thermflowd.log"; exit 1; }
	sleep 0.2
done
echo "smoke: unauthenticated request -> 401"

wrong="$(code -H 'Authorization: Bearer wrong-token' "$base/v1/kernels")"
[ "$wrong" = "401" ] || { echo "smoke: wrong token -> $wrong, want 401"; exit 1; }

ok="$(code -H "Authorization: Bearer $token" "$base/v1/kernels")"
[ "$ok" = "200" ] || { echo "smoke: authed kernels -> $ok, want 200"; exit 1; }
echo "smoke: bearer token accepted -> 200"

# Submit a job and verify the handle carries an ID.
body='{"kernel":"matmul","options":{"policy":"chessboard"}}'
submit="$(authcurl -X POST -H 'Content-Type: application/json' -d "$body" "$base/v2/jobs")"
id="$(printf '%s' "$submit" | sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')"
[ -n "$id" ] || { echo "smoke: submit returned no job id: $submit"; exit 1; }
echo "smoke: submitted job $id"

# Long-poll to done.
state=""
i=0
while [ "$state" != "done" ]; do
	i=$((i + 1))
	[ "$i" -ge 30 ] && { echo "smoke: job never finished (state=$state)"; exit 1; }
	wait_body="$(authcurl "$base/v2/jobs/$id/wait?timeout_ms=2000")"
	state="$(printf '%s' "$wait_body" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p')"
	case "$state" in failed|expired) echo "smoke: job $state: $wait_body"; exit 1 ;; esac
done
echo "smoke: job reached state done"

# Duplicate submit converges on the same ID (200, not a new job).
dup="$(authcurl -X POST -H 'Content-Type: application/json' -d "$body" "$base/v2/jobs")"
dupid="$(printf '%s' "$dup" | sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')"
[ "$dupid" = "$id" ] || { echo "smoke: duplicate submit minted new id $dupid != $id"; exit 1; }
echo "smoke: duplicate submit converged on $id"

# The v2 batch stream is ID-keyed NDJSON: 3 jobs -> 3 lines, each with
# an id, the duplicate pair sharing one.
batch='{"jobs":[{"kernel":"dot"},{"kernel":"fir"},{"kernel":"dot"}]}'
stream="$(authcurl -X POST -H 'Content-Type: application/json' -d "$batch" "$base/v2/batch")"
lines="$(printf '%s\n' "$stream" | grep -c '"id"')"
[ "$lines" = "3" ] || { echo "smoke: batch streamed $lines id-keyed lines, want 3: $stream"; exit 1; }
distinct="$(printf '%s\n' "$stream" | sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' | sort -u | wc -l | tr -d ' ')"
[ "$distinct" = "2" ] || { echo "smoke: batch ids not deduplicated (distinct=$distinct)"; exit 1; }
echo "smoke: batch stream id-keyed (3 items, 2 distinct jobs)"

# A tightly limited instance answers a burst with 429 + Retry-After.
"$tmp/thermflowd" -addr "127.0.0.1:$port2" -rate-limit 1 -rate-burst 2 \
	>"$tmp/thermflowd2.log" 2>&1 &
spid2=$!
i=0
until [ "$(code "$base2/v1/kernels" || true)" = "200" ]; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && { echo "rate-limited thermflowd did not come up"; cat "$tmp/thermflowd2.log"; exit 1; }
	sleep 0.2
done
got429=""
for _ in 1 2 3 4 5; do
	hdr="$(curl -s -D - -o /dev/null "$base2/v1/kernels")"
	if printf '%s' "$hdr" | grep -q "^HTTP/.* 429"; then
		printf '%s' "$hdr" | grep -qi '^Retry-After:' ||
			{ echo "smoke: 429 without Retry-After"; exit 1; }
		got429=yes
		break
	fi
done
[ "$got429" = "yes" ] || { echo "smoke: burst never hit the rate limit"; exit 1; }
echo "smoke: rate limit -> 429 with Retry-After"

echo "smoke: OK (v2 lifecycle, auth, rate limit)"
