#!/bin/sh
# CI smoke test for thermflowd: start the server, run the quick sweep
# against it via the Go client twice, and assert the second run is
# answered from the shared cache. Fast (<30 s) — the full measurement
# lives in scripts/bench_serve.sh.
set -eu

port="${PORT:-18431}"
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
spid=""
trap 'kill "${spid:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/thermflowd" ./cmd/thermflowd
go build -o "$tmp/experiments" ./cmd/experiments

"$tmp/thermflowd" -addr "127.0.0.1:$port" >"$tmp/thermflowd.log" 2>&1 &
spid=$!

i=0
until "$tmp/experiments" -addr "$base" -quick >"$tmp/run1.txt" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && { echo "thermflowd did not come up"; cat "$tmp/thermflowd.log"; exit 1; }
	sleep 0.2
done

"$tmp/experiments" -addr "$base" -quick >"$tmp/run2.txt"

summary="$(tail -1 "$tmp/run2.txt")"
echo "run 1: $(tail -1 "$tmp/run1.txt" | sed 's/^remote sweep: //')"
echo "run 2: $(printf '%s' "$summary" | sed 's/^remote sweep: //')"

errors="$(printf '%s' "$summary" | sed -n 's/.*errors=\([0-9]*\).*/\1/p')"
cached="$(printf '%s' "$summary" | sed -n 's/.*cached=\([0-9]*\).*/\1/p')"
[ "$errors" = "0" ] || { echo "smoke: second run had $errors errors"; exit 1; }
[ -n "$cached" ] && [ "$cached" -gt 0 ] || {
	echo "smoke: second run reported no cache hits"; exit 1
}
echo "smoke: OK ($cached cached results on repeat)"
