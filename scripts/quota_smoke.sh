#!/bin/sh
# Quota smoke: prove the multi-tenant admission plane attributes
# shedding to the right tenant. Two thermflowd backends (bounded job
# queues, trusting the gateway's tenant header) sit behind one
# thermflowgate holding the token file and the quota file. thermload
# then interleaves two tenants through the v2 job API with unique job
# bodies:
#
#   high  class critical, generous rate     1/3 of arrivals, priority 10
#   low   class batch, rate 5 req/s         2/3 of arrivals, priority 0
#
# The offered rate pushes "low" far past its own envelope, so the edge
# answers it 429 (and any queue pressure sheds it first as batch
# class), while "high" must come through clean: zero 5xx, zero
# transport errors, zero 503, and a bounded p99. thermload's -check
# gate enforces exactly that (-require-clean high -require-shed low),
# and the script then asserts the admission counters actually moved on
# /metrics — the gateway counted batch-class rate rejections, the
# backends counted critical-class admissions under the forwarded
# tenant identity, and the queue-bound gauge is exported.
#
# Tunables (environment):
#   PORT        base port                  (default 18480)
#   STAGES      offered rates in req/s     (default "30")
#   STAGE_SECS  seconds per stage          (default 8)
#   MAX_P99_MS  p99 bound for "high"       (default 10000)
set -eu

port="${PORT:-18480}"
stages="${STAGES:-30}"
stage_secs="${STAGE_SECS:-8}"
max_p99="${MAX_P99_MS:-10000}"
p1=$((port + 1))
p2=$((port + 2))
gw="http://127.0.0.1:$port"
b1="http://127.0.0.1:$p1"
b2="http://127.0.0.1:$p2"
tmp="$(mktemp -d)"
gpid=""
bpid1=""
bpid2=""
trap 'kill "${gpid:-}" "${bpid1:-}" "${bpid2:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/thermflowd" ./cmd/thermflowd
go build -o "$tmp/thermflowgate" ./cmd/thermflowgate
go build -o "$tmp/thermload" ./cmd/thermload

cat >"$tmp/quotas.json" <<'EOF'
{
  "default": {"class": "standard", "rate": 5, "burst": 5},
  "tenants": [
    {"name": "high", "class": "critical", "tokens": ["tok-high"],
     "rate": 400, "burst": 800},
    {"name": "low", "class": "batch", "tokens": ["tok-low"],
     "rate": 5, "burst": 5, "max_queue": 8}
  ]
}
EOF
printf 'tok-high\ntok-low\n' >"$tmp/tokens"

# Backends trust the tenant header only because nothing but the
# gateway can reach them in this harness; they bound their queues so
# admission control is live.
"$tmp/thermflowd" -addr "127.0.0.1:$p1" -workers 1 \
	-quota-file "$tmp/quotas.json" -trust-tenant-header \
	-job-max-queue 16 -job-queue-watermark 8 >"$tmp/b1.log" 2>&1 &
bpid1=$!
"$tmp/thermflowd" -addr "127.0.0.1:$p2" -workers 1 \
	-quota-file "$tmp/quotas.json" -trust-tenant-header \
	-job-max-queue 16 -job-queue-watermark 8 >"$tmp/b2.log" 2>&1 &
bpid2=$!
"$tmp/thermflowgate" -addr "127.0.0.1:$port" -backends "$b1,$b2" \
	-auth-token-file "$tmp/tokens" -quota-file "$tmp/quotas.json" \
	-health-interval 300ms >"$tmp/gw.log" 2>&1 &
gpid=$!

# Readiness: both backends on the ring.
i=0
until curl -s -H 'Authorization: Bearer tok-high' "$gw/gateway/backends" 2>/dev/null |
	grep -q '"ring_backends": *2'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && {
		echo "quota_smoke: gateway pool did not come up"
		cat "$tmp/gw.log" "$tmp/b1.log" "$tmp/b2.log" 2>/dev/null
		exit 1
	}
	sleep 0.2
done
echo "quota_smoke: gateway up, 2 backends on the ring"

"$tmp/thermload" -target "$gw" -api v2 -unique \
	-tenants "high:tok-high:10:1,low:tok-low:0:2" \
	-stages "$stages" -stage-duration "${stage_secs}s" -timeout 20s \
	-out "$tmp/quota_load.json" \
	-check -require-clean high -require-shed low -max-clean-p99-ms "$max_p99"

# The admission plane left its audit trail on /metrics: the gateway
# counted batch-class rate rejections at the edge...
curl -s -H 'Authorization: Bearer tok-high' "$gw/metrics" |
	grep 'thermflow_admission_total{tenant_class="batch",decision="rate_limited"}' |
	grep -qv ' 0$' || {
	echo "quota_smoke: gateway /metrics missing batch rate_limited admissions"
	curl -s -H 'Authorization: Bearer tok-high' "$gw/metrics" | grep thermflow_admission || true
	exit 1
}
# ...and the backends admitted critical-class jobs under the tenant
# identity the gateway forwarded.
{ curl -s "$b1/metrics"; curl -s "$b2/metrics"; } >"$tmp/backend_metrics"
grep 'thermflow_admission_total{tenant_class="critical",decision="admitted"}' \
	"$tmp/backend_metrics" | grep -qv ' 0$' || {
	echo "quota_smoke: backends /metrics missing critical admitted jobs"
	grep thermflow_admission "$tmp/backend_metrics" || true
	exit 1
}
grep -q 'thermflow_jobs_queue_bound{bound="max"} 16' "$tmp/backend_metrics" || {
	echo "quota_smoke: backends /metrics missing queue-bound gauge"
	grep thermflow_jobs_queue_bound "$tmp/backend_metrics" || true
	exit 1
}
echo "quota_smoke: admission counters live on gateway and backends"

echo "quota_smoke: OK (high clean, low shed, counters attributed)"
