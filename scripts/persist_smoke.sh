#!/bin/sh
# CI smoke test for the persistent cache tier: start thermflowd with
# -cache-dir, run the quick sweep, kill the server, restart it over the
# same directory, run the sweep again, and assert the second run is
# served from the disk tier. Fast (<30 s) — the full measurement lives
# in scripts/bench_persist.sh.
set -eu

port="${PORT:-18433}"
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
cache="$tmp/cache"
spid=""
trap 'kill "${spid:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/thermflowd" ./cmd/thermflowd
go build -o "$tmp/experiments" ./cmd/experiments

start_server() {
	"$tmp/thermflowd" -addr "127.0.0.1:$port" -cache-dir "$cache" >>"$tmp/thermflowd.log" 2>&1 &
	spid=$!
	i=0
	until "$tmp/experiments" -addr "$base" -reset-cache >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -ge 50 ] && { echo "thermflowd did not come up"; cat "$tmp/thermflowd.log"; exit 1; }
		sleep 0.2
	done
}

start_server
"$tmp/experiments" -addr "$base" -quick >"$tmp/run1.txt"

# Hard restart: only the disk tier survives.
kill "$spid" 2>/dev/null || true
wait "$spid" 2>/dev/null || true
spid=""
start_server_nr() { # restart without resetting the cache
	"$tmp/thermflowd" -addr "127.0.0.1:$port" -cache-dir "$cache" >>"$tmp/thermflowd.log" 2>&1 &
	spid=$!
	i=0
	until curl -sf "$base/v1/kernels" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -ge 50 ] && { echo "thermflowd did not come back"; cat "$tmp/thermflowd.log"; exit 1; }
		sleep 0.2
	done
}
start_server_nr

"$tmp/experiments" -addr "$base" -quick >"$tmp/run2.txt"

summary="$(tail -1 "$tmp/run2.txt")"
echo "run 1: $(tail -1 "$tmp/run1.txt" | sed 's/^remote sweep: //')"
echo "run 2: $(printf '%s' "$summary" | sed 's/^remote sweep: //')"

field() { printf '%s' "$summary" | sed -n "s/.*[ =]$1=\([0-9]*\).*/\1/p"; }
errors="$(field errors)"
cached="$(field cached)"
disk_hits="$(field disk_hits)"
[ "$errors" = "0" ] || { echo "persist smoke: second run had $errors errors"; exit 1; }
[ -n "$cached" ] && [ "$cached" -gt 0 ] || {
	echo "persist smoke: restarted server reported no cache hits"; exit 1
}
[ -n "$disk_hits" ] && [ "$disk_hits" -gt 0 ] || {
	echo "persist smoke: restarted server served nothing from the disk tier"; exit 1
}
echo "persist smoke: OK ($cached cached, $disk_hits from disk after restart)"
