#!/bin/sh
# CI smoke test for the distributed tracing plane, over real processes:
# two thermflowd backends behind one thermflowgate. A region job
# submitted under a client-minted X-Thermflow-Trace header must come
# back with one stitched timeline — gateway coordination and round
# spans plus region-solve spans recorded by BOTH backends — all under
# the client's trace ID (cross-process propagation, not per-process
# traces). Then a short thermload sweep must report its slowest
# requests' trace IDs, and the slowest v2 job must resolve through the
# gateway to a timeline carrying that exact trace ID. Fast (<60 s).
set -eu

port="${PORT:-18487}"
p1=$((port + 1))
p2=$((port + 2))
gw="http://127.0.0.1:$port"
b1="http://127.0.0.1:$p1"
b2="http://127.0.0.1:$p2"
tmp="$(mktemp -d)"
gpid=""
bpid1=""
bpid2=""
trap 'kill "${gpid:-}" "${bpid1:-}" "${bpid2:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/thermflowd" ./cmd/thermflowd
go build -o "$tmp/thermflowgate" ./cmd/thermflowgate
go build -o "$tmp/tdfa" ./cmd/tdfa
go build -o "$tmp/thermload" ./cmd/thermload

"$tmp/thermflowd" -addr "127.0.0.1:$p1" >"$tmp/b1.log" 2>&1 &
bpid1=$!
"$tmp/thermflowd" -addr "127.0.0.1:$p2" >"$tmp/b2.log" 2>&1 &
bpid2=$!
"$tmp/thermflowgate" -addr "127.0.0.1:$port" -backends "$b1,$b2" \
	-state-dir "$tmp/gwstate" \
	-health-interval 300ms -eject-after 2 >"$tmp/gw.log" 2>&1 &
gpid=$!

i=0
until curl -s "$gw/gateway/backends" 2>/dev/null | grep -q '"ring_backends": *2'; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && {
		echo "gateway pool did not come up"
		cat "$tmp/gw.log" "$tmp/b1.log" "$tmp/b2.log" 2>/dev/null
		exit 1
	}
	sleep 0.2
done
echo "smoke: gateway up, 2 backends on the ring"

# --- 1. Region job under a client-minted trace -----------------------
tid="00000000000000000000000000abcdef"
span="0000000000abcdef"
"$tmp/tdfa" -mega 8,2 -seed 7 -emit >"$tmp/mega.ir"
src="$(awk 'BEGIN{ORS="\\n"} {gsub(/\\/, "\\\\"); gsub(/"/, "\\\""); print}' "$tmp/mega.ir")"
# σ-slack mode: the fixpoint converges in a handful of rounds, so the
# whole timeline (coordination span included) fits the per-job span
# bound — exact mode's hundreds of rounds would overflow it, which is
# its own documented behavior (earliest rounds + drop count), not what
# this smoke asserts. 16 regions keep enough ring keys in play that
# both backends own some.
printf '{"kind":"region","program":"%s","options":{"solver":"region","regions":16,"region_delta":0.02}}' \
	"$src" >"$tmp/region.json"

curl -s -D "$tmp/headers.txt" -X POST -H 'Content-Type: application/json' \
	-H "X-Thermflow-Trace: $tid-$span" \
	--data-binary "@$tmp/region.json" "$gw/v2/jobs" >"$tmp/fanout.json"
grep -q '"state": *"done"' "$tmp/fanout.json" ||
	{ echo "smoke: region job did not finish done:"; cat "$tmp/fanout.json"; exit 1; }

# The response continues the client's trace with a fresh server span.
grep -i "x-thermflow-trace: *$tid-" "$tmp/headers.txt" >/dev/null ||
	{ echo "smoke: response did not continue the client trace:"; cat "$tmp/headers.txt"; exit 1; }
grep -i "x-thermflow-trace: *$tid-$span" "$tmp/headers.txt" >/dev/null &&
	{ echo "smoke: gateway echoed the client's span ID instead of minting its own"; exit 1; }
echo "smoke: region job done, response continues client trace $tid"

# --- 2. Stitched timeline spans both backends ------------------------
id="$(sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' "$tmp/fanout.json" | head -1)"
[ -n "$id" ] || { echo "smoke: region job status has no id"; exit 1; }
curl -s "$gw/v2/jobs/$id/trace" >"$tmp/trace.json"

grep -q "\"trace_id\": *\"$tid\"" "$tmp/trace.json" ||
	{ echo "smoke: stitched timeline lost the client trace ID:"; cat "$tmp/trace.json"; exit 1; }
for phase in region.coordinate region.round region.solve; do
	grep -q "\"name\": *\"$phase\"" "$tmp/trace.json" ||
		{ echo "smoke: timeline has no $phase span"; cat "$tmp/trace.json"; exit 1; }
done
nbackends="$(sed -n 's/.*"backend": *"\([^"]*\)".*/\1/p' "$tmp/trace.json" | sort -u | wc -l)"
[ "$nbackends" -ge 2 ] ||
	{ echo "smoke: region.solve spans from $nbackends distinct backends, want 2"; cat "$tmp/trace.json"; exit 1; }
echo "smoke: one timeline, region.solve spans from $nbackends backends under trace $tid"

# --- 3. thermload reports slowest-request traces that resolve --------
"$tmp/thermload" -target "$gw" -api v2 -unique \
	-stages 20 -stage-duration 2s -kernels dot,saxpy \
	-out "$tmp/load.json" -check >"$tmp/load.log" 2>&1 ||
	{ echo "smoke: thermload run failed:"; cat "$tmp/load.log"; exit 1; }
grep -q '"slowest":' "$tmp/load.json" ||
	{ echo "smoke: load report has no slowest block"; cat "$tmp/load.json"; exit 1; }
ltid="$(sed -n 's/.*"trace_id": *"\([0-9a-f]*\)".*/\1/p' "$tmp/load.json" | head -1)"
ljid="$(sed -n 's/.*"job_id": *"\([0-9a-f]*\)".*/\1/p' "$tmp/load.json" | head -1)"
[ -n "$ltid" ] && [ -n "$ljid" ] ||
	{ echo "smoke: slowest entry lacks trace_id/job_id"; cat "$tmp/load.json"; exit 1; }

curl -s "$gw/v2/jobs/$ljid/trace" >"$tmp/slow_trace.json"
grep -q "\"trace_id\": *\"$ltid\"" "$tmp/slow_trace.json" ||
	{ echo "smoke: slowest job $ljid timeline does not carry trace $ltid:"; cat "$tmp/slow_trace.json"; exit 1; }
grep -q '"name": *"job.run"' "$tmp/slow_trace.json" ||
	{ echo "smoke: slowest job timeline has no job.run span:"; cat "$tmp/slow_trace.json"; exit 1; }
echo "smoke: thermload slowest request (trace $ltid) resolves to job $ljid's timeline"

echo "smoke: OK (cross-process trace propagation, stitched region timeline, slowest-trace resolution)"
