// Convergence explores the behaviour of the Fig. 2 fixpoint iteration:
// how the user-supplied δ trades analysis effort for precision, and how
// the iteration cap turns into the paper's "too difficult to predict"
// diagnostic.
package main

import (
	"fmt"
	"log"

	"thermflow"
	"thermflow/internal/report"
)

func main() {
	prog, err := thermflow.Kernel("checksum")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("δ sweep (cold start): tighter thresholds cost more sweeps")
	fmt.Println()
	tbl := report.NewTable("delta K", "iterations", "converged", "final Δ K", "peak K")
	for _, delta := range []float64{1.0, 0.5, 0.1, 0.05, 0.01} {
		c, err := prog.Compile(thermflow.Options{
			Policy:      thermflow.FirstFree,
			Delta:       delta,
			MaxIter:     512,
			NoWarmStart: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddF(delta, c.Thermal.Iterations, c.Thermal.Converged,
			c.Thermal.FinalDelta, c.Thermal.PeakTemp)
	}
	fmt.Print(tbl.String())

	// A deliberately starved run: tiny δ, tiny iteration budget. The
	// result is flagged rather than silently wrong.
	fmt.Println("\nstarved run (δ=1e-6 K, 4 iterations):")
	c, err := prog.Compile(thermflow.Options{
		Policy:      thermflow.FirstFree,
		Delta:       1e-6,
		MaxIter:     4,
		NoWarmStart: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v after %d sweeps, final Δ=%.3g K\n",
		c.Thermal.Converged, c.Thermal.Iterations, c.Thermal.FinalDelta)
	fmt.Println("non-convergence is the paper's signal that the program's thermal")
	fmt.Println("state is hard to predict statically — a cue to re-optimize it.")

	// The warm start: initializing at the steady state of the average
	// power map collapses the iteration count.
	warm, err := prog.Compile(thermflow.Options{Policy: thermflow.FirstFree, Delta: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith warm start: converged=%v in %d sweeps (δ=0.01 K)\n",
		warm.Thermal.Converged, warm.Thermal.Iterations)
}
