// Quickstart: compile a kernel, predict its register-file thermal
// state at compile time, and check the prediction against a
// cycle-accurate thermal simulation — the end-to-end claim of the
// paper in ~40 lines.
package main

import (
	"fmt"
	"log"

	"thermflow"
)

func main() {
	// A built-in benchmark kernel: an 8-tap FIR filter.
	prog, err := thermflow.Kernel("fir")
	if err != nil {
		log.Fatal(err)
	}

	// Compile with the classic ordered-free-list assignment (the
	// paper's Fig. 1a) and run the thermal data-flow analysis.
	c, err := prog.Compile(thermflow.Options{Policy: thermflow.FirstFree})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analysis converged: %v after %d sweeps (final Δ %.3g K)\n",
		c.Thermal.Converged, c.Thermal.Iterations, c.Thermal.FinalDelta)
	m := c.Metrics()
	fmt.Printf("predicted: peak %.1f K, max gradient %.1f K, σ %.1f K\n\n",
		m.Peak, m.MaxGradient, m.StdDev)
	fmt.Println(c.Heatmap())

	// The variables most likely to create the hot spot — the spill /
	// split candidates of the paper's §4.
	fmt.Println("thermally critical variables:")
	for i, vh := range c.Thermal.TopCritical(3) {
		fmt.Printf("  %d. %s (register %d, ~%.0f accesses per invocation)\n",
			i+1, vh.Value.Name, vh.Reg, vh.Accesses)
	}

	// Score the compile-time prediction against ground truth: execute
	// the program, replay its register-access trace through the RC
	// thermal model, compare.
	acc, _, err := c.Validate(48)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprediction vs measurement: RMSE %.3g K, Pearson %.4f, top-4 hit rate %.2f\n",
		acc.RMSE, acc.Pearson, acc.Top4Overlap)
}
