// Autotune demonstrates the closed loop the paper envisions: the
// thermal data-flow analysis predicts the hot spot, the compiler
// applies its thermal-aware transforms in increasing performance-cost
// order until the predicted peak meets a target — no thermal
// simulation in the loop.
package main

import (
	"fmt"
	"log"

	"thermflow"
)

func main() {
	prog, err := thermflow.Kernel("fir")
	if err != nil {
		log.Fatal(err)
	}
	base, err := prog.Compile(thermflow.Options{Policy: thermflow.FirstFree})
	if err != nil {
		log.Fatal(err)
	}
	amb := base.Tech().TAmbient
	target := amb + 8 // allow 8 K of rise
	fmt.Printf("baseline predicted peak: %.1f K (ambient %.1f K)\n", base.Thermal.PeakTemp, amb)
	fmt.Printf("target: %.1f K\n\n", target)

	tuned, steps, err := base.AutoTune(target)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range steps {
		verdict := "rejected"
		if s.Applied {
			verdict = "applied"
		}
		fmt.Printf("  %-18s %.1f K -> %.1f K  (%s)\n", s.Name, s.PeakBefore, s.PeakAfter, verdict)
	}
	fmt.Printf("\nfinal predicted peak: %.1f K", tuned.Thermal.PeakTemp)
	if tuned.Thermal.PeakTemp <= target {
		fmt.Println("  — target met")
	} else {
		fmt.Println("  — target missed; NOPs were the last resort")
	}

	// The tuned program still computes the same result.
	want, err := base.Run(24)
	if err != nil {
		log.Fatal(err)
	}
	got, err := tuned.Run(24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("semantics preserved: %v (cycle overhead %.0f%%)\n",
		want.Ret == got.Ret,
		100*float64(got.Cycles-want.Cycles)/float64(want.Cycles))
	fmt.Println()
	fmt.Println(tuned.Heatmap())
}
