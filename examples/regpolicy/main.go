// Regpolicy reproduces the paper's Figure 1 interactively: the same
// program compiled under the first-free, random and chessboard
// register-assignment policies, with measured thermal maps side by
// side. First-free concentrates the heat, random scatters it,
// chessboard homogenizes it.
package main

import (
	"fmt"
	"log"

	"thermflow"
	"thermflow/internal/report"
	"thermflow/internal/thermal"
)

func main() {
	prog, err := thermflow.Kernel("fir")
	if err != nil {
		log.Fatal(err)
	}

	policies := []thermflow.Policy{
		thermflow.FirstFree, thermflow.Random, thermflow.Chessboard,
	}
	var titles []string
	var states []thermal.State
	var cs []*thermflow.Compiled
	for _, pol := range policies {
		c, err := prog.Compile(thermflow.Options{Policy: pol, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		gt, err := c.GroundTruth(48)
		if err != nil {
			log.Fatal(err)
		}
		titles = append(titles, pol.String())
		states = append(states, gt.Steady)
		cs = append(cs, c)
	}

	// Common colour scale so the maps are visually comparable.
	lo, hi := states[0].Min(), states[0].Max()
	for _, st := range states {
		if st.Min() < lo {
			lo = st.Min()
		}
		if st.Max() > hi {
			hi = st.Max()
		}
	}
	var maps []string
	for i, st := range states {
		maps = append(maps, cs[i].StateHeatmap(st, lo, hi))
	}
	fmt.Println("measured sustained thermal maps (Fig. 1 reproduction):")
	fmt.Println()
	fmt.Print(report.SideBySide(titles, maps, 4))
	fmt.Println()

	tbl := report.NewTable("policy", "peak K", "max gradient K", "σ K")
	for i, c := range cs {
		m := c.StateMetrics(states[i])
		tbl.AddF(titles[i], m.Peak, m.MaxGradient, m.StdDev)
	}
	fmt.Print(tbl.String())
	fmt.Println("\nexpected shape: first-free hottest and steepest; chessboard homogenized.")
}
