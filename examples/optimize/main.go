// Optimize demonstrates the analysis-driven compilation loop of the
// paper's §4: predict the thermal state, identify the critical
// variables, apply each thermal-aware transformation, and measure what
// it bought — peak temperature, gradients, and the performance bill.
package main

import (
	"fmt"
	"log"

	"thermflow"
	"thermflow/internal/report"
)

func main() {
	prog, err := thermflow.Kernel("fir")
	if err != nil {
		log.Fatal(err)
	}
	base, err := prog.Compile(thermflow.Options{Policy: thermflow.FirstFree})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (first-free): peak %.1f K, gradient %.1f K\n",
		base.Metrics().Peak, base.Metrics().MaxGradient)
	fmt.Printf("critical variables: %v\n\n", base.Critical(3))

	baseRun, err := base.Run(24)
	if err != nil {
		log.Fatal(err)
	}

	tbl := report.NewTable("transform", "peak K", "Δpeak K", "gradient K", "cycle overhead %")
	add := func(name string, c *thermflow.Compiled) {
		run, err := c.Run(24)
		if err != nil {
			log.Fatal(err)
		}
		if run.Ret != baseRun.Ret {
			log.Fatalf("%s changed the program's result", name)
		}
		m := c.Metrics()
		overhead := 100 * float64(run.Cycles-baseRun.Cycles) / float64(baseRun.Cycles)
		tbl.AddF(name, m.Peak, m.Peak-base.Metrics().Peak, m.MaxGradient, overhead)
	}

	// Re-assignment with the Coldest policy, seeded by predicted heat.
	if c, err := base.ThermalReassign(); err != nil {
		log.Fatal(err)
	} else {
		add("reassign(coldest)", c)
	}
	// Cool-down NOPs above 70% of the predicted rise.
	amb := base.Tech().TAmbient
	thr := amb + 0.7*(base.Thermal.PeakTemp-amb)
	if c, n, err := base.InsertCooldownNops(thr, 2); err != nil {
		log.Fatal(err)
	} else {
		add(fmt.Sprintf("nop-insertion(+%d)", n), c)
	}
	// Thermal-aware instruction scheduling.
	if c, err := base.ThermalSchedule(); err != nil {
		log.Fatal(err)
	} else {
		add("thermal-schedule", c)
	}

	fmt.Print(tbl.String())
	fmt.Println("\nreassignment is free; NOPs buy kelvins with cycles; ns-scale")
	fmt.Println("scheduling cannot move ms-scale thermal state (negative result).")
}
