// Command thermflowgate fronts a pool of thermflowd backends with a
// consistent-hashing shard gateway: it speaks the same HTTP surface as
// one backend, routes every job to the pool member that owns its
// content-hash ID on a bounded-remap ring, fans batches out per shard
// (re-merging the ID-keyed NDJSON streams in completion order, with
// failover re-dispatch when a backend dies mid-batch), actively
// health-checks the pool, and supports administrative draining.
//
// Usage:
//
//	thermflowgate -backends host1:8080,host2:8080 [-addr :8090]
//	              [-vnodes 128] [-health-interval 2s] [-health-timeout 2s]
//	              [-eject-after 2] [-replicas 1] [-state-dir DIR]
//	              [-auth-token-file FILE] [-rate-limit N] [-rate-burst N]
//	              [-quota-file FILE] [-request-timeout 0]
//	              [-debug-addr ""]
//
// Clients point at the gateway exactly as they would at one
// thermflowd; the Authorization header is passed through to the
// backends, so one token file can protect the whole deployment
// (distribute it to the gateway and every backend). The hardening
// flags compose the same middleware stack as thermflowd — request IDs,
// tracing, access logs, optional edge auth (SIGHUP re-reads the token
// file), per-client rate limiting, body and deadline caps.
//
// Tracing: the gateway propagates the sanitized X-Thermflow-Trace
// context to every backend it proxies to, records region-coordination
// spans of its own, stitches the per-round spans each backend returns
// into one timeline, and serves the result at GET /v2/jobs/{id}/trace
// (falling through to the owning backend for plain sharded jobs).
//
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/ plus /metrics. It has no auth and exposes process
// internals: bind it to loopback (e.g. 127.0.0.1:6061) or an
// operator-only network, NEVER a public address.
//
// -quota-file enables per-tenant admission at the edge: bearer tokens
// resolve to tenant quota profiles (rate, burst, priority class; see
// internal/tenant), re-read on the same SIGHUP that rotates tokens,
// and every proxied request carries the resolved tenant name to the
// backends in the X-Thermflow-Tenant header — start the backends with
// -trust-tenant-header (and the same quota file) so their registries
// enforce the tenant's queue and run caps under the right identity.
//
// -replicas R makes the gateway replicate every terminal job status it
// relays to the owner's R ring successors, so a permanently dead
// backend's job IDs still answer (marked with the X-Thermflow-Replica
// header). -replicas -1 disables replication. -state-dir DIR persists
// administrative drain decisions in a write-ahead log, so a drained
// backend stays drained across gateway restarts.
//
// Operations:
//
//	GET  /gateway/backends           the shard view (health, draining, inflight)
//	POST /gateway/drain?backend=URL  stop new assignments; let work finish
//	POST /gateway/undrain?backend=URL
//
// See the README "Sharding across backends" section for a walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"thermflow/internal/gateway"
	"thermflow/internal/joblog"
	"thermflow/internal/server"
	"thermflow/internal/tenant"
	"thermflow/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	backends := flag.String("backends", "", "comma-separated thermflowd base URLs (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = 128)")
	healthInterval := flag.Duration("health-interval", 0, "health probe cadence (0 = 2s)")
	healthTimeout := flag.Duration("health-timeout", 0, "health probe timeout (0 = 2s)")
	ejectAfter := flag.Int("eject-after", 0, "consecutive probe failures that eject a backend (0 = 2)")
	replicas := flag.Int("replicas", 0, "ring successors each terminal job status is replicated to (0 = 1, negative disables)")
	stateDir := flag.String("state-dir", "", "directory for the durable gateway-state log; drains survive restarts (empty = volatile)")
	authTokenFile := flag.String("auth-token-file", "", "bearer-token file for edge auth, one token per line (empty = no auth; tokens pass through to backends either way)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client request rate limit in req/s (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "rate-limit burst size (0 = 2x rate)")
	quotaFile := flag.String("quota-file", "", "tenant quota-profile file (JSON; empty = uniform quotas, SIGHUP reloads)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request deadline, streams included (0 = none)")
	debugAddr := flag.String("debug-addr", "", "pprof+metrics debug listener; loopback only, never public (empty = off)")
	flag.Parse()

	var pool []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			pool = append(pool, b)
		}
	}
	if len(pool) == 0 {
		log.Fatalf("thermflowgate: -backends is required (comma-separated thermflowd base URLs)")
	}

	metrics := server.NewMetrics()
	tr := trace.NewRecorder("thermflowgate", 0, 0)
	gwCfg := gateway.Config{
		Backends:       pool,
		VNodes:         *vnodes,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		EjectAfter:     *ejectAfter,
		Replicas:       *replicas,
		Metrics:        metrics,
		Trace:          tr,
	}
	if *stateDir != "" {
		sl, srec, err := joblog.Open(*stateDir, joblog.Options{})
		if err != nil {
			log.Fatalf("thermflowgate: state log: %v", err)
		}
		defer sl.Close()
		gwCfg.Log, gwCfg.Recovery = sl, &srec
		log.Printf("thermflowgate: durable state at %s", *stateDir)
	}
	gw, err := gateway.New(gwCfg)
	if err != nil {
		log.Fatalf("thermflowgate: %v", err)
	}
	defer gw.Close()

	// The same chain thermflowd wires, in the same order: identity,
	// tracing and logging outermost, auth before rate limiting so bucket
	// keys are authenticated tenants, then the body and deadline caps.
	// Tracing shares the gateway's recorder so edge spans land in the
	// same timelines as the coordination spans it stitches.
	mw := []server.Middleware{
		server.WithRequestID(),
		server.WithTracing(tr),
		server.WithAccessLog(nil),
		server.WithMetrics(metrics),
		server.WithBodyLimit(server.MaxBodyBytes),
	}
	var reloaders []server.Reloader
	var tokens *server.TokenSource
	if *authTokenFile != "" {
		tokens, err = server.OpenTokenSource(*authTokenFile)
		if err != nil {
			log.Fatalf("thermflowgate: %v", err)
		}
		mw = append(mw, server.WithAuth(tokens))
		reloaders = append(reloaders, tokens)
		log.Printf("thermflowgate: bearer-token auth enabled (%s, SIGHUP reloads)", *authTokenFile)
	}
	var quotas *tenant.Source
	if *quotaFile != "" {
		quotas, err = tenant.Open(*quotaFile)
		if err != nil {
			log.Fatalf("thermflowgate: %v", err)
		}
		reloaders = append(reloaders, quotas)
		log.Printf("thermflowgate: tenant quotas from %s (%d tenants, SIGHUP reloads)",
			*quotaFile, len(quotas.Quotas().Names()))
	}
	if quotas != nil || *rateLimit > 0 {
		qc := server.QuotaConfig{
			Rate: *rateLimit, Burst: *rateBurst,
			ByToken: *authTokenFile != "",
			Metrics: metrics,
			Tokens:  tokens,
		}
		if quotas != nil {
			qc.Quotas = quotas
		}
		mw = append(mw, server.WithQuotas(qc))
		if *rateLimit > 0 {
			log.Printf("thermflowgate: rate limit %.3g req/s per client", *rateLimit)
		}
	}
	if len(reloaders) > 0 {
		server.ReloadOnSIGHUP("thermflowgate", reloaders...)
	}
	if *reqTimeout > 0 {
		mw = append(mw, server.WithTimeout(*reqTimeout))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Chain(gw, mw...),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           server.DebugHandler(metrics),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("thermflowgate: debug listener: %v", err)
			}
		}()
		log.Printf("thermflowgate: debug listener (pprof+metrics) on %s — keep it loopback-only", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("thermflowgate: listening on %s, sharding %d backends", *addr, len(pool))

	select {
	case err := <-errc:
		log.Fatalf("thermflowgate: %v", err)
	case <-ctx.Done():
	}

	log.Printf("thermflowgate: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("thermflowgate: shutdown: %v", err)
	}
}
