// Command experiments runs every reproduced figure and experiment and
// prints their tables and heat maps (the content of EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-quick] [-only fig1|fig2|e3|e4|e5|e6|e7|a1|a2]
//	experiments -addr http://localhost:8080 [-quick]
//
// With -addr the standard sweep matrix runs against a running
// thermflowd server instead of an in-process engine, so concurrent or
// repeated runs — even from different processes — share one result
// cache (see scripts/bench_serve.sh for the recorded comparison).
package main

import (
	"flag"
	"fmt"
	"os"

	"thermflow/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps")
	only := flag.String("only", "", "run a single experiment (fig1, fig2, e3, e4, e5, e6, e7, e8, a1, a2)")
	workers := flag.Int("workers", 0, "batch compile worker-pool size for in-process runs (0 = GOMAXPROCS; the server's pool is set by thermflowd -workers)")
	addr := flag.String("addr", "", "run the sweep against a thermflowd server at this base URL instead of in-process (supports -quick; not -only)")
	resetCache := flag.Bool("reset-cache", false, "with -addr: reset the server's result cache and exit")
	flag.Parse()

	cfg := experiments.Config{Out: os.Stdout, Quick: *quick, Workers: *workers}
	if *addr != "" {
		if *only != "" {
			fmt.Fprintln(os.Stderr, "experiments: -only selects in-process figure drivers and cannot be combined with -addr (the remote mode runs the fixed sweep matrix)")
			os.Exit(2)
		}
		var err error
		if *resetCache {
			err = experiments.RemoteResetCache(*addr)
		} else {
			_, err = experiments.Remote(cfg, *addr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	var err error
	switch *only {
	case "":
		err = experiments.All(cfg)
	case "fig1":
		_, err = experiments.Fig1(cfg)
	case "fig2":
		_, err = experiments.Fig2(cfg)
	case "e3":
		_, err = experiments.E3(cfg)
	case "e4":
		_, err = experiments.E4(cfg)
	case "e5":
		_, err = experiments.E5(cfg)
	case "e6":
		_, err = experiments.E6(cfg)
	case "e7":
		_, err = experiments.E7(cfg)
	case "e8":
		_, err = experiments.E8(cfg)
	case "e9":
		_, err = experiments.E9(cfg)
	case "e10":
		_, err = experiments.E10(cfg)
	case "a1":
		_, err = experiments.A1(cfg)
	case "a2":
		_, err = experiments.A2(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
