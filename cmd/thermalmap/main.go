// Command thermalmap renders Figure 1 style thermal maps: the same
// program compiled under several register-assignment policies, shown
// side by side on a common temperature scale.
//
// Usage:
//
//	thermalmap -kernel fir
//	thermalmap -kernel matmul -policies first-free,chessboard -measured -scale 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"thermflow"
	"thermflow/internal/report"
	"thermflow/internal/thermal"
)

func main() {
	var (
		kernel   = flag.String("kernel", "fir", "built-in kernel name")
		policies = flag.String("policies", "first-free,random,chessboard", "comma-separated policies")
		seed     = flag.Int64("seed", 1, "seed for the random policy")
		measured = flag.Bool("measured", false, "show measured (trace replay) maps instead of predicted")
		scale    = flag.Int("scale", 48, "execution scale for measured maps")
	)
	flag.Parse()

	prog, err := thermflow.Kernel(*kernel)
	if err != nil {
		fail(err)
	}

	var titles []string
	var states []thermal.State
	var compiled []*thermflow.Compiled
	for _, name := range strings.Split(*policies, ",") {
		pol, ok := thermflow.PolicyByName(strings.TrimSpace(name))
		if !ok {
			fail(fmt.Errorf("unknown policy %q", name))
		}
		c, err := prog.Compile(thermflow.Options{Policy: pol, Seed: *seed})
		if err != nil {
			fail(err)
		}
		st := c.Thermal.Peak
		if *measured {
			gt, err := c.GroundTruth(*scale)
			if err != nil {
				fail(err)
			}
			st = gt.Steady
		}
		titles = append(titles, pol.String())
		states = append(states, st)
		compiled = append(compiled, c)
	}

	lo, hi := states[0].Min(), states[0].Max()
	for _, st := range states {
		if st.Min() < lo {
			lo = st.Min()
		}
		if st.Max() > hi {
			hi = st.Max()
		}
	}
	var maps []string
	for i, st := range states {
		maps = append(maps, compiled[i].StateHeatmap(st, lo, hi))
	}
	kind := "predicted"
	if *measured {
		kind = "measured"
	}
	fmt.Printf("%s thermal maps for kernel %q\n\n", kind, *kernel)
	fmt.Print(report.SideBySide(titles, maps, 4))

	tbl := report.NewTable("policy", "peak K", "gradient K", "σ K", "occupancy")
	for i, c := range compiled {
		m := c.StateMetrics(states[i])
		tbl.AddF(titles[i], m.Peak, m.MaxGradient, m.StdDev, c.Alloc.Occupancy())
	}
	fmt.Println()
	fmt.Print(tbl.String())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "thermalmap:", err)
	os.Exit(1)
}
