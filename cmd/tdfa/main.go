// Command tdfa compiles a program and runs the thermal data-flow
// analysis, printing the convergence report, the predicted heat map,
// the hottest registers and the critical-variable ranking.
//
// Usage:
//
//	tdfa -kernel fir -policy first-free
//	tdfa -file prog.ir -policy chessboard -delta 0.01
//	tdfa -kernel dot -early            # pre-allocation predictive mode
//	tdfa -kernel fir -validate 48      # score vs trace-driven truth
//	tdfa -mega 8,2 -solver region      # partitioned solve of a generated mega-module
package main

import (
	"flag"
	"fmt"
	"os"

	"thermflow"
)

func main() {
	var (
		kernel   = flag.String("kernel", "", "built-in kernel name (see -list)")
		file     = flag.String("file", "", "textual IR file to compile")
		list     = flag.Bool("list", false, "list built-in kernels and exit")
		policy   = flag.String("policy", "first-free", "register-assignment policy")
		seed     = flag.Int64("seed", 1, "seed for the random policy")
		delta    = flag.Float64("delta", 0, "convergence threshold δ in kelvin (0 = default)")
		maxIter  = flag.Int("maxiter", 0, "iteration cap (0 = default)")
		kappa    = flag.Float64("kappa", 0, "time-acceleration factor κ (0 = default)")
		solver   = flag.String("solver", "dense", "fixpoint solver: dense (Fig. 2 reference), sparse (worklist) or region (partitioned)")
		regions  = flag.Int("regions", 0, "region-count bound for -solver region (0 = solver default)")
		regDelta = flag.Float64("region-delta", 0, "extra per-region boundary slack σ in kelvin for -solver region (0 = exact, bit-identical to dense)")
		mega     = flag.String("mega", "", "generate a mega-module instead of loading one: arms,depth (e.g. 8,2)")
		emit     = flag.Bool("emit", false, "print the loaded program's IR and exit (no analysis)")
		cold     = flag.Bool("cold", false, "disable the steady-state warm start")
		leakage  = flag.Bool("leakage", false, "include temperature-dependent leakage")
		early    = flag.Bool("early", false, "run the pre-allocation predictive analysis")
		validate = flag.Int("validate", 0, "execute at this scale and score the prediction")
		topN     = flag.Int("top", 5, "critical variables to list")
	)
	flag.Parse()

	if *list {
		for _, k := range thermflow.Kernels() {
			fmt.Println(k)
		}
		return
	}

	prog, err := loadProgram(*kernel, *file, *mega, *seed)
	if err != nil {
		fail(err)
	}
	if *emit {
		fmt.Print(prog.Fn.String())
		return
	}
	pol, ok := thermflow.PolicyByName(*policy)
	if !ok {
		fail(fmt.Errorf("unknown policy %q", *policy))
	}
	sol, ok := thermflow.SolverByName(*solver)
	if !ok {
		fail(fmt.Errorf("unknown solver %q", *solver))
	}
	opts := thermflow.Options{
		Policy:      pol,
		Seed:        *seed,
		Solver:      sol,
		Delta:       *delta,
		MaxIter:     *maxIter,
		Kappa:       *kappa,
		NoWarmStart: *cold,
		WithLeakage: *leakage,
		Regions:     *regions,
		RegionDelta: *regDelta,
	}

	if *early {
		res, err := prog.AnalyzeEarly(thermflow.EarlyPrior(pol), opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("early (pre-allocation) analysis, prior for policy %s\n", pol)
		fmt.Printf("converged=%v iterations=%d finalΔ=%.4g K peak=%.2f K\n",
			res.Converged, res.Iterations, res.FinalDelta, res.PeakTemp)
		fmt.Println("\nmost thermally critical variables:")
		for i, vh := range res.TopCritical(*topN) {
			fmt.Printf("  %d. %-12s accesses/invocation=%.1f\n", i+1, vh.Value.Name, vh.Accesses)
		}
		return
	}

	c, err := prog.Compile(opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("policy=%s registers=%d occupancy=%.2f spills=%d\n",
		pol, c.Floorplan().NumRegs, c.Alloc.Occupancy(), len(c.Alloc.Spilled))
	fmt.Printf("converged=%v iterations=%d finalΔ=%.4g K\n",
		c.Thermal.Converged, c.Thermal.Iterations, c.Thermal.FinalDelta)
	m := c.Metrics()
	fmt.Printf("predicted: peak=%.2f K gradient=%.2f K σ=%.2f K hotspots=%d\n\n",
		m.Peak, m.MaxGradient, m.StdDev, m.HotspotCells)
	fmt.Println(c.Heatmap())
	fmt.Println("hottest registers:", c.Thermal.HottestRegs(5))
	fmt.Println("\nmost thermally critical variables:")
	for i, vh := range c.Thermal.TopCritical(*topN) {
		fmt.Printf("  %d. %-12s register=%-3d accesses/invocation=%.1f\n",
			i+1, vh.Value.Name, vh.Reg, vh.Accesses)
	}

	if *validate > 0 {
		acc, gt, err := c.Validate(*validate)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nvalidation at scale %d (trace replay, %d accesses):\n",
			*validate, gt.Run.Trace.TotalAccesses())
		fmt.Printf("  RMSE=%.3g K  MAE=%.3g K  Pearson=%.4f  top4=%.2f  peakErr=%.3g K\n",
			acc.RMSE, acc.MAE, acc.Pearson, acc.Top4Overlap, acc.PeakError)
	}
}

func loadProgram(kernel, file, mega string, seed int64) (*thermflow.Program, error) {
	n := 0
	for _, s := range []string{kernel, file, mega} {
		if s != "" {
			n++
		}
	}
	switch {
	case n > 1:
		return nil, fmt.Errorf("use exactly one of -kernel, -file or -mega")
	case kernel != "":
		return thermflow.Kernel(kernel)
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return thermflow.Parse(string(src))
	case mega != "":
		var arms, depth int
		if _, err := fmt.Sscanf(mega, "%d,%d", &arms, &depth); err != nil {
			return nil, fmt.Errorf("-mega wants arms,depth (e.g. 8,2): %v", err)
		}
		return thermflow.GenerateMega(thermflow.MegaOptions{
			Seed: seed, Arms: arms, Depth: depth,
		}), nil
	default:
		return nil, fmt.Errorf("one of -kernel, -file or -mega is required (try -list)")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tdfa:", err)
	os.Exit(1)
}
