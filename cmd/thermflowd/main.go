// Command thermflowd serves the thermal-analysis compile engine over
// HTTP/JSON: a long-lived process whose content-keyed result cache is
// shared by every client, so repeated configurations across experiment
// runs, CI jobs and interactive sessions compile once.
//
// Usage:
//
//	thermflowd [-addr :8080] [-workers 0]
//	           [-cache-dir DIR] [-cache-max-bytes N] [-cache-disk-max-bytes N]
//
// The result cache is a two-tier store: an in-memory LRU tier capped
// at -cache-max-bytes, and (with -cache-dir) a persistent on-disk tier
// capped at -cache-disk-max-bytes. The disk tier is content-addressed
// by the same hash as the memory tier, so a restarted thermflowd
// pointed at the same directory comes back warm — repeat sweeps skip
// compilation entirely (scripts/bench_persist.sh records the win).
//
// See the README "HTTP API" section and the thermflow/api package for
// the endpoints and wire types; thermflow/client is the Go client.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"thermflow"
	"thermflow/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "compile worker-pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent result-cache tier (empty = memory only)")
	cacheMemBytes := flag.Int64("cache-max-bytes", 0, "memory cache tier byte cap (0 = 256 MiB)")
	cacheDiskBytes := flag.Int64("cache-disk-max-bytes", 0, "disk cache tier byte cap (0 = 1 GiB)")
	flag.Parse()

	b, err := thermflow.NewBatchConfig(thermflow.BatchConfig{
		Workers:        *workers,
		CacheMemBytes:  *cacheMemBytes,
		CacheDir:       *cacheDir,
		CacheDiskBytes: *cacheDiskBytes,
	})
	if err != nil {
		log.Fatalf("thermflowd: %v", err)
	}
	if *cacheDir != "" {
		st := b.Stats()
		log.Printf("thermflowd: disk cache at %s (%d entries, %d bytes warm)",
			*cacheDir, st.Disk.Entries, st.Disk.Bytes)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(b),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("thermflowd: listening on %s (%d workers)", *addr, b.Workers())

	select {
	case err := <-errc:
		log.Fatalf("thermflowd: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: in-flight compiles finish, new connections are
	// refused. Streaming batch requests are bounded by the deadline.
	log.Printf("thermflowd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("thermflowd: shutdown: %v", err)
	}
}
