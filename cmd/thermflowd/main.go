// Command thermflowd serves the thermal-analysis compile engine over
// HTTP/JSON: a long-lived process whose content-keyed result cache is
// shared by every client, so repeated configurations across experiment
// runs, CI jobs and interactive sessions compile once.
//
// Usage:
//
//	thermflowd [-addr :8080] [-workers 0]
//	           [-cache-dir DIR] [-cache-max-bytes N] [-cache-disk-max-bytes N]
//	           [-auth-token-file FILE] [-rate-limit N] [-rate-burst N]
//	           [-quota-file FILE] [-trust-tenant-header]
//	           [-job-ttl 15m] [-job-max 4096] [-request-timeout 0]
//	           [-job-max-queue 0] [-job-queue-watermark 0]
//	           [-job-age-step 0] [-job-age-period 30s]
//	           [-job-log-dir DIR] [-job-snapshot-every 512]
//	           [-debug-addr ""]
//
// The result cache is a two-tier store: an in-memory LRU tier capped
// at -cache-max-bytes, and (with -cache-dir) a persistent on-disk tier
// capped at -cache-disk-max-bytes. The disk tier is content-addressed
// by the same hash as the memory tier — and, since v2, the same hash
// as the job IDs the /v2 endpoints hand out — so a restarted
// thermflowd pointed at the same directory comes back warm.
//
// Hardening flags compose the middleware stack: -auth-token-file
// requires a bearer token from the file (one per line) on every
// request, and SIGHUP re-reads the file so tokens rotate without a
// restart; -rate-limit enforces a per-client token bucket (keyed by
// token, else peer host) of N requests/second with -rate-burst
// capacity; -request-timeout bounds each request's context. Requests
// always carry an X-Request-Id (generated when absent) and emit one
// structured JSON access-log record carrying the request, trace and
// span IDs (and, when resolved, the tenant and job ID).
//
// Every request also runs under a distributed-tracing span: the
// inbound X-Thermflow-Trace header (sanitized; malformed values are
// replaced, never echoed) joins the request to an existing trace, and
// the job registry records per-job lifecycle timelines served at GET
// /v2/jobs/{id}/trace. Timelines are bounded in-memory state; the
// access log is the durable record.
//
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/ plus /metrics. It has no auth and exposes process
// internals: bind it to loopback (e.g. 127.0.0.1:6060) or an
// operator-only network, NEVER a public address.
//
// Multi-tenancy: -quota-file maps bearer tokens to tenant quota
// profiles (rate, burst, queue depth, run concurrency, priority
// class; see internal/tenant) and is re-read on the same SIGHUP that
// rotates tokens. A tenant over its own envelope is answered 429; the
// shared pool saturating answers 503. -job-max-queue bounds the v2
// registry queue with a shed watermark (-job-queue-watermark,
// 0 = 3/4 of the bound) above which low-class work is refused or
// displaced; -job-age-step grants queued work effective priority as it
// waits (one step per -job-age-period), so displaced-class tenants
// starve for a bounded time, not forever. -trust-tenant-header honors the X-Thermflow-Tenant name
// stamped by a fronting thermflowgate — enable it only on backends
// reachable exclusively through the gateway.
//
// -job-log-dir makes the v2 job registry durable: every lifecycle
// transition is appended to a CRC-framed write-ahead log under
// DIR/jobs (snapshot-and-truncated every -job-snapshot-every records),
// and replica statuses pushed by a gateway persist under DIR/replicas.
// A restarted thermflowd replays both, so job IDs handed out before a
// crash keep answering: finished results re-materialize from the disk
// cache tier, queued work re-enters the queue, and jobs that were
// running at the crash restart (or fail with an attributable
// "interrupted by restart" error when they can no longer run). Pair it
// with -cache-dir on the same volume so replayed results find their
// artifacts.
//
// To scale beyond one process, front a pool of thermflowd instances
// with cmd/thermflowgate, which shards jobs across them by consistent
// hashing over the v2 job ID.
//
// The v2 job lifecycle (-job-ttl, -job-max) keeps finished jobs
// pollable for the TTL and bounds the registry; see the README "HTTP
// API" section and the thermflow/api package for endpoints and wire
// types; thermflow/client is the Go client.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"thermflow"
	"thermflow/internal/joblog"
	"thermflow/internal/jobs"
	"thermflow/internal/server"
	"thermflow/internal/tenant"
	"thermflow/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "compile worker-pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent result-cache tier (empty = memory only)")
	cacheMemBytes := flag.Int64("cache-max-bytes", 0, "memory cache tier byte cap (0 = 256 MiB)")
	cacheDiskBytes := flag.Int64("cache-disk-max-bytes", 0, "disk cache tier byte cap (0 = 1 GiB)")
	errTTL := flag.Duration("cache-err-ttl", 0, "how long compile failures are served from cache before retry (0 = 30s)")
	authTokenFile := flag.String("auth-token-file", "", "bearer-token file, one token per line (empty = no auth)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client request rate limit in req/s (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "rate-limit burst size (0 = 2x rate)")
	quotaFile := flag.String("quota-file", "", "tenant quota-profile file (JSON; empty = uniform quotas, SIGHUP reloads)")
	trustTenant := flag.Bool("trust-tenant-header", false, "honor the X-Thermflow-Tenant header stamped by a trusted gateway")
	jobTTL := flag.Duration("job-ttl", 0, "how long finished v2 jobs stay pollable (0 = 15m)")
	jobMax := flag.Int("job-max", 0, "max v2 jobs retained, live + finished (0 = 4096)")
	jobMaxQueue := flag.Int("job-max-queue", 0, "max v2 jobs waiting in the queue; admission control sheds above the watermark (0 = unbounded)")
	jobWatermark := flag.Int("job-queue-watermark", 0, "queue depth where admission turns selective (0 = 3/4 of -job-max-queue)")
	jobAgeStep := flag.Int("job-age-step", 0, "priority points a queued job gains per -job-age-period waited (0 = aging off)")
	jobAgePeriod := flag.Duration("job-age-period", 0, "queue wait that earns one -job-age-step (0 = 30s)")
	jobLogDir := flag.String("job-log-dir", "", "directory for the durable job write-ahead log (empty = jobs vanish on restart)")
	jobSnapshotEvery := flag.Int("job-snapshot-every", 0, "WAL records between snapshot-and-truncate compactions (0 = 512)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request deadline, streams included (0 = none)")
	debugAddr := flag.String("debug-addr", "", "pprof+metrics debug listener; loopback only, never public (empty = off)")
	flag.Parse()

	b, err := thermflow.NewBatchConfig(thermflow.BatchConfig{
		Workers:        *workers,
		CacheMemBytes:  *cacheMemBytes,
		CacheDir:       *cacheDir,
		CacheDiskBytes: *cacheDiskBytes,
		ErrTTL:         *errTTL,
	})
	if err != nil {
		log.Fatalf("thermflowd: %v", err)
	}
	if *cacheDir != "" {
		st := b.Stats()
		log.Printf("thermflowd: disk cache at %s (%d entries, %d bytes warm)",
			*cacheDir, st.Disk.Entries, st.Disk.Bytes)
	}

	jobsCfg := jobs.Config{
		TTL: *jobTTL, MaxJobs: *jobMax, SnapshotEvery: *jobSnapshotEvery,
		MaxQueue: *jobMaxQueue, QueueWatermark: *jobWatermark,
		AgeStep: *jobAgeStep, AgePeriod: *jobAgePeriod,
	}
	var replicas *server.ReplicaStore
	if *jobLogDir != "" {
		jl, jrec, err := joblog.Open(filepath.Join(*jobLogDir, "jobs"), joblog.Options{})
		if err != nil {
			log.Fatalf("thermflowd: job log: %v", err)
		}
		defer jl.Close()
		jobsCfg.Log, jobsCfg.Recovery = jl, &jrec

		rl, rrec, err := joblog.Open(filepath.Join(*jobLogDir, "replicas"), joblog.Options{})
		if err != nil {
			log.Fatalf("thermflowd: replica log: %v", err)
		}
		defer rl.Close()
		replicas = server.NewReplicaStore(0, rl, &rrec)
		log.Printf("thermflowd: durable job log at %s (%d records replayed)",
			*jobLogDir, len(jrec.Records))
	}

	metrics := server.NewMetrics()
	tr := trace.NewRecorder("thermflowd", 0, 0)
	s := server.NewConfig(b, server.Config{
		Jobs: jobsCfg, Replicas: replicas, Metrics: metrics, Trace: tr,
	})
	defer s.Close()

	// The middleware chain, outermost first: identity, tracing, logging
	// and metrics see everything (including rejections), auth runs
	// before rate limiting so bucket keys are authenticated tenants, and
	// the body and deadline caps guard the handlers. Tracing shares the
	// server's recorder so request spans land in job timelines.
	mw := []server.Middleware{
		server.WithRequestID(),
		server.WithTracing(tr),
		server.WithAccessLog(nil),
		server.WithMetrics(metrics),
		server.WithBodyLimit(server.MaxBodyBytes),
	}
	var reloaders []server.Reloader
	var tokens *server.TokenSource
	if *authTokenFile != "" {
		tokens, err = server.OpenTokenSource(*authTokenFile)
		if err != nil {
			log.Fatalf("thermflowd: %v", err)
		}
		mw = append(mw, server.WithAuth(tokens))
		reloaders = append(reloaders, tokens)
		log.Printf("thermflowd: bearer-token auth enabled (%s, SIGHUP reloads)", *authTokenFile)
	}
	var quotas *tenant.Source
	if *quotaFile != "" {
		quotas, err = tenant.Open(*quotaFile)
		if err != nil {
			log.Fatalf("thermflowd: %v", err)
		}
		reloaders = append(reloaders, quotas)
		log.Printf("thermflowd: tenant quotas from %s (%d tenants, SIGHUP reloads)",
			*quotaFile, len(quotas.Quotas().Names()))
	}
	if quotas != nil || *rateLimit > 0 {
		// Token-keyed buckets only behind auth: every token the
		// limiter then sees is validated. Without auth, buckets key by
		// peer host — an unvalidated token would be a free bypass.
		qc := server.QuotaConfig{
			Rate: *rateLimit, Burst: *rateBurst,
			ByToken:     *authTokenFile != "",
			TrustHeader: *trustTenant,
			Metrics:     metrics,
			Tokens:      tokens,
		}
		if quotas != nil {
			qc.Quotas = quotas
		}
		mw = append(mw, server.WithQuotas(qc))
		if *rateLimit > 0 {
			log.Printf("thermflowd: rate limit %.3g req/s per client", *rateLimit)
		}
	}
	if len(reloaders) > 0 {
		server.ReloadOnSIGHUP("thermflowd", reloaders...)
	}
	if *reqTimeout > 0 {
		mw = append(mw, server.WithTimeout(*reqTimeout))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Chain(s, mw...),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           server.DebugHandler(metrics),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("thermflowd: debug listener: %v", err)
			}
		}()
		log.Printf("thermflowd: debug listener (pprof+metrics) on %s — keep it loopback-only", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("thermflowd: listening on %s (%d workers)", *addr, b.Workers())

	select {
	case err := <-errc:
		log.Fatalf("thermflowd: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: in-flight compiles finish, new connections are
	// refused. Streaming batch requests are bounded by the deadline.
	log.Printf("thermflowd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("thermflowd: shutdown: %v", err)
	}
}
