// Command thermload is an open-loop load generator for thermflowd and
// thermflowgate: it offers requests at fixed arrival rates — a ticker
// fires regardless of how many responses are still outstanding, which
// is what makes the measurement honest under saturation (a closed loop
// self-throttles and hides queueing) — and reports per-stage achieved
// throughput, latency percentiles and error attribution.
//
// Usage:
//
//	thermload -target http://localhost:8090 [-stages 25,50,100]
//	          [-stage-duration 5s] [-kernels dot,saxpy,fir]
//	          [-timeout 30s] [-auth-token TOK] [-out BENCH_LOAD.json]
//	          [-check]
//
// Each stage offers its rate (requests/second) for -stage-duration,
// cycling POST /v1/compile bodies over the kernel × policy matrix so
// traffic exercises both cold compiles and cache hits, exactly like
// the 99-job experiment sweep. When every stage is done the tool
// writes one JSON document (to -out, "-" for stdout) with, per stage:
// offered rate, requests sent/completed, achieved throughput, p50/p95/
// p99 latency, and error counts attributed to 429 (rate limited), 503
// (at capacity), other 4xx, 5xx, and transport failures.
//
// -check turns the run into a smoke gate: exit non-zero unless every
// stage completed requests, measured a positive p99, and saw zero 5xx
// and zero transport errors. CI runs a short sweep against a gateway
// with two backends under `make smoke-load`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// spec is one request body in the cycled workload matrix.
type spec struct {
	Kernel  string         `json:"kernel"`
	Options map[string]any `json:"options,omitempty"`
}

// stageResult is the per-stage block of the BENCH_LOAD.json document.
type stageResult struct {
	OfferedRPS   float64 `json:"offered_rps"`
	DurationSecs float64 `json:"duration_s"`
	Sent         int     `json:"sent"`
	Completed    int     `json:"completed"`
	AchievedRPS  float64 `json:"achieved_rps"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	Errors       errs    `json:"errors"`
}

// errs attributes failures: rate-limit rejections and capacity
// shedding are the serving plane working as designed; 5xx and
// transport failures are the numbers a smoke gate refuses.
type errs struct {
	RateLimited int `json:"429"`
	Capacity    int `json:"503"`
	Client4xx   int `json:"other_4xx"`
	Server5xx   int `json:"5xx"`
	Transport   int `json:"transport"`
}

type report struct {
	Target        string        `json:"target"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	NumCPU        int           `json:"num_cpu"`
	StageDuration float64       `json:"stage_duration_s"`
	Kernels       []string      `json:"kernels"`
	Stages        []stageResult `json:"stages"`
}

func main() {
	target := flag.String("target", "", "base URL of the thermflowd or thermflowgate to load (required)")
	stages := flag.String("stages", "25,50,100", "comma-separated offered arrival rates in req/s, one stage each")
	stageDur := flag.Duration("stage-duration", 5*time.Second, "how long each stage offers its rate")
	kernels := flag.String("kernels", "dot,saxpy,fir,matmul", "comma-separated kernels to cycle through")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	authToken := flag.String("auth-token", "", "bearer token sent with every request (empty = none)")
	out := flag.String("out", "BENCH_LOAD.json", "output path for the JSON report (\"-\" = stdout)")
	check := flag.Bool("check", false, "exit non-zero unless every stage completed work with p99 > 0 and zero 5xx/transport errors")
	flag.Parse()

	if *target == "" {
		log.Fatal("thermload: -target is required")
	}
	rates, err := parseRates(*stages)
	if err != nil {
		log.Fatalf("thermload: %v", err)
	}
	names := splitList(*kernels)
	if len(names) == 0 {
		log.Fatal("thermload: -kernels must name at least one kernel")
	}

	specs := buildMatrix(names)
	client := &http.Client{Timeout: *timeout}
	rep := report{
		Target:        strings.TrimRight(*target, "/"),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		StageDuration: stageDur.Seconds(),
		Kernels:       names,
	}

	for _, rate := range rates {
		log.Printf("thermload: stage %.4g req/s for %s against %s", rate, *stageDur, rep.Target)
		res := runStage(client, rep.Target, *authToken, specs, rate, *stageDur)
		log.Printf("thermload: stage %.4g req/s: sent=%d completed=%d achieved=%.4g req/s p50=%.3gms p95=%.3gms p99=%.3gms err={429:%d 503:%d 4xx:%d 5xx:%d transport:%d}",
			rate, res.Sent, res.Completed, res.AchievedRPS, res.P50Ms, res.P95Ms, res.P99Ms,
			res.Errors.RateLimited, res.Errors.Capacity, res.Errors.Client4xx,
			res.Errors.Server5xx, res.Errors.Transport)
		rep.Stages = append(rep.Stages, res)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("thermload: encoding report: %v", err)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, _ = os.Stdout.Write(doc)
	} else if err := os.WriteFile(*out, doc, 0o644); err != nil {
		log.Fatalf("thermload: writing %s: %v", *out, err)
	} else {
		log.Printf("thermload: wrote %s", *out)
	}

	if *check {
		if err := checkReport(rep); err != nil {
			log.Fatalf("thermload: check failed: %v", err)
		}
		log.Printf("thermload: check passed (%d stages, zero 5xx/transport)", len(rep.Stages))
	}
}

// parseRates reads the -stages list.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, f := range splitList(s) {
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			return nil, fmt.Errorf("invalid stage rate %q", f)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-stages must name at least one rate")
	}
	return rates, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// buildMatrix is the kernel × policy request matrix — the same shape
// as the 99-job experiment sweep, so warm traffic hits the pool's
// cache the way real re-runs do.
func buildMatrix(kernels []string) [][]byte {
	policies := []string{"first-free", "random", "chessboard", "round-robin", "coldest", "spread-max"}
	var specs [][]byte
	for _, k := range kernels {
		for _, p := range policies {
			body, err := json.Marshal(spec{Kernel: k, Options: map[string]any{"policy": p}})
			if err != nil {
				log.Fatalf("thermload: encoding spec: %v", err)
			}
			specs = append(specs, body)
		}
	}
	return specs
}

// outcome is one request's classification.
type outcome struct {
	latency time.Duration
	status  int  // 0 on transport failure
	ok      bool // 2xx
}

// runStage offers rate req/s for dur: the arrival ticker fires on
// schedule no matter how many requests are outstanding (open loop),
// then the stage waits for its stragglers so percentiles cover every
// arrival it generated.
func runStage(client *http.Client, target, auth string, specs [][]byte, rate float64, dur time.Duration) stageResult {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(dur)
	defer deadline.Stop()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var outcomes []outcome

	sent := 0
	start := time.Now()
launch:
	for {
		select {
		case <-deadline.C:
			break launch
		case <-ticker.C:
			body := specs[sent%len(specs)]
			sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				o := oneRequest(client, target, auth, body)
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
			}()
		}
	}
	offered := time.Since(start)
	wg.Wait() // stragglers finish or hit the client timeout

	res := stageResult{
		OfferedRPS:   rate,
		DurationSecs: dur.Seconds(),
		Sent:         sent,
	}
	var lat []float64
	for _, o := range outcomes {
		switch {
		case o.ok:
			res.Completed++
			lat = append(lat, float64(o.latency)/float64(time.Millisecond))
		case o.status == http.StatusTooManyRequests:
			res.Errors.RateLimited++
		case o.status == http.StatusServiceUnavailable:
			res.Errors.Capacity++
		case o.status >= 500:
			res.Errors.Server5xx++
		case o.status >= 400:
			res.Errors.Client4xx++
		default:
			res.Errors.Transport++
		}
	}
	if offered > 0 {
		res.AchievedRPS = round3(float64(res.Completed) / offered.Seconds())
	}
	sort.Float64s(lat)
	res.P50Ms = round3(percentile(lat, 0.50))
	res.P95Ms = round3(percentile(lat, 0.95))
	res.P99Ms = round3(percentile(lat, 0.99))
	if n := len(lat); n > 0 {
		res.MaxMs = round3(lat[n-1])
	}
	return res
}

// oneRequest issues one POST /v1/compile and classifies it.
func oneRequest(client *http.Client, target, auth string, body []byte) outcome {
	req, err := http.NewRequest(http.MethodPost, target+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		return outcome{}
	}
	req.Header.Set("Content-Type", "application/json")
	if auth != "" {
		req.Header.Set("Authorization", "Bearer "+auth)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return outcome{latency: time.Since(start)}
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return outcome{
		latency: time.Since(start),
		status:  resp.StatusCode,
		ok:      resp.StatusCode/100 == 2,
	}
}

// percentile reads the p-quantile from an ASCENDING-sorted slice
// (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// checkReport is the -check smoke gate.
func checkReport(rep report) error {
	if len(rep.Stages) == 0 {
		return fmt.Errorf("no stages ran")
	}
	for _, st := range rep.Stages {
		if st.Completed == 0 {
			return fmt.Errorf("stage %.4g req/s completed no requests", st.OfferedRPS)
		}
		if st.P99Ms <= 0 {
			return fmt.Errorf("stage %.4g req/s has non-positive p99 (%.3g ms)", st.OfferedRPS, st.P99Ms)
		}
		if st.Errors.Server5xx > 0 || st.Errors.Transport > 0 {
			return fmt.Errorf("stage %.4g req/s saw %d 5xx and %d transport errors",
				st.OfferedRPS, st.Errors.Server5xx, st.Errors.Transport)
		}
	}
	return nil
}
