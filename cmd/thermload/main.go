// Command thermload is an open-loop load generator for thermflowd and
// thermflowgate: it offers requests at fixed arrival rates — a ticker
// fires regardless of how many responses are still outstanding, which
// is what makes the measurement honest under saturation (a closed loop
// self-throttles and hides queueing) — and reports per-stage achieved
// throughput, latency percentiles and error attribution.
//
// Every request carries a fresh X-Thermflow-Trace header, so each
// arrival starts its own trace through the serving plane. Per stage the
// report (and the log) lists the trace IDs of the slowest completed
// requests — with -api v2 each entry also carries the job ID, so a slow
// outlier resolves straight to its lifecycle timeline via
// GET /v2/jobs/{id}/trace.
//
// Usage:
//
//	thermload -target http://localhost:8090 [-stages 25,50,100]
//	          [-stage-duration 5s] [-kernels dot,saxpy,fir]
//	          [-timeout 30s] [-auth-token TOK] [-out BENCH_LOAD.json]
//	          [-api v1|v2] [-tenants name:token[:prio[:weight]],...]
//	          [-unique] [-check] [-baseline FILE]
//	          [-require-clean NAMES] [-require-shed NAMES]
//	          [-max-clean-p99-ms N]
//
// Each stage offers its rate (requests/second) for -stage-duration,
// cycling POST /v1/compile bodies over the kernel × policy matrix so
// traffic exercises both cold compiles and cache hits, exactly like
// the 99-job experiment sweep. When every stage is done the tool
// writes one JSON document (to -out, "-" for stdout) with, per stage:
// offered rate, requests sent/completed, achieved throughput, p50/p95/
// p99 latency, and error counts attributed to 429 (rate limited), 503
// (at capacity or shed), other 4xx, 5xx, and transport failures.
//
// Multi-tenant mode: -tenants drives several tenants through one open
// loop, each with its own bearer token, v2 job priority and relative
// arrival weight ("high:tok-h:10:3,low:tok-l:0:1" offers 3/4 of
// arrivals as high). The report then carries a per-tenant block per
// stage — sent, completed, p50/p99 and error attribution — which is
// what lets a CI gate assert that shedding lands on the right tenant.
// -api v2 switches the workload to POST /v2/jobs followed by a wait
// long-poll (latency covers submit through terminal state; a job shed
// from the queue counts as 503). -unique salts every request body so
// no two arrivals share a job ID — genuine queue pressure rather than
// cache hits.
//
// -check turns the run into a smoke gate: exit non-zero unless every
// stage completed requests, measured a positive p99, and saw zero 5xx
// and zero transport errors. -require-clean NAMES hardens the gate for
// those tenants: zero 5xx, transport AND 503/shed, with p99 bounded by
// -max-clean-p99-ms when set. -require-shed NAMES demands the named
// tenants saw at least one 429/503 across the run — proof the pool
// actually shed. -baseline FILE diffs the fresh report against a
// committed one: a stage whose overall p99 regresses more than 2× past
// the baseline (above a 25 ms floor), or that shows transport errors
// where the baseline had none, fails the gate. CI runs a short sweep
// against a gateway with two backends under `make smoke-load`, and the
// two-tenant shedding gate under `make smoke-quota`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thermflow/internal/server"
	"thermflow/internal/trace"
)

// spec is one request body template in the cycled workload matrix.
type spec struct {
	Kernel  string         `json:"kernel"`
	Options map[string]any `json:"options,omitempty"`
	// Priority is the v2 scheduling hint (omitted for v1 bodies).
	Priority int `json:"priority,omitempty"`
}

// stageResult is the per-stage block of the BENCH_LOAD.json document.
type stageResult struct {
	OfferedRPS   float64 `json:"offered_rps"`
	DurationSecs float64 `json:"duration_s"`
	Sent         int     `json:"sent"`
	Completed    int     `json:"completed"`
	AchievedRPS  float64 `json:"achieved_rps"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	Errors       errs    `json:"errors"`
	// Tenants breaks the stage down by tenant name (multi-tenant runs
	// only): who was served and who was shed.
	Tenants map[string]*tenantResult `json:"tenants,omitempty"`
	// Slowest lists the stage's slowest completed requests, worst
	// first, each with the trace ID the request was sent under — the
	// handle that joins a latency outlier to its server-side timeline.
	Slowest []slowRequest `json:"slowest,omitempty"`
}

// slowRequest identifies one slow-outlier arrival. JobID is set on v2
// runs, where the slow request resolves directly to a job timeline at
// GET /v2/jobs/{job_id}/trace.
type slowRequest struct {
	TraceID   string  `json:"trace_id"`
	JobID     string  `json:"job_id,omitempty"`
	Tenant    string  `json:"tenant,omitempty"`
	LatencyMs float64 `json:"latency_ms"`
}

// slowestN bounds the per-stage slow-outlier list.
const slowestN = 5

// tenantResult is one tenant's share of a stage.
type tenantResult struct {
	Sent      int     `json:"sent"`
	Completed int     `json:"completed"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	Errors    errs    `json:"errors"`
}

// errs attributes failures: rate-limit rejections and capacity
// shedding are the serving plane working as designed; 5xx and
// transport failures are the numbers a smoke gate refuses.
type errs struct {
	RateLimited int `json:"429"`
	Capacity    int `json:"503"`
	Client4xx   int `json:"other_4xx"`
	Server5xx   int `json:"5xx"`
	Transport   int `json:"transport"`
}

type report struct {
	Target        string        `json:"target"`
	API           string        `json:"api"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	NumCPU        int           `json:"num_cpu"`
	StageDuration float64       `json:"stage_duration_s"`
	Kernels       []string      `json:"kernels"`
	Tenants       []string      `json:"tenants,omitempty"`
	Stages        []stageResult `json:"stages"`
}

// tenantSpec is one -tenants entry: a name, its bearer token, the v2
// priority its submits carry, and its relative share of arrivals.
type tenantSpec struct {
	name   string
	token  string
	prio   int
	weight int
}

// loadConfig carries everything one stage needs.
type loadConfig struct {
	client  *http.Client
	target  string
	api     string
	unique  bool
	specs   []spec
	tenants []tenantSpec
	picker  []int // arrival i draws tenants[picker[i%len]]
	timeout time.Duration
	salt    *atomic.Int64 // process-unique body salt for -unique
}

func main() {
	target := flag.String("target", "", "base URL of the thermflowd or thermflowgate to load (required)")
	stages := flag.String("stages", "25,50,100", "comma-separated offered arrival rates in req/s, one stage each")
	stageDur := flag.Duration("stage-duration", 5*time.Second, "how long each stage offers its rate")
	kernels := flag.String("kernels", "dot,saxpy,fir,matmul", "comma-separated kernels to cycle through")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout (v2: submit through terminal state)")
	authToken := flag.String("auth-token", "", "bearer token sent with every request (empty = none; ignored with -tenants)")
	apiFlag := flag.String("api", "v1", "workload shape: v1 (POST /v1/compile) or v2 (POST /v2/jobs + wait)")
	tenantsFlag := flag.String("tenants", "", "comma-separated name:token[:priority[:weight]] tenants to interleave (empty = single anonymous client)")
	unique := flag.Bool("unique", false, "salt every request body so no two arrivals share a job ID")
	out := flag.String("out", "BENCH_LOAD.json", "output path for the JSON report (\"-\" = stdout)")
	check := flag.Bool("check", false, "exit non-zero unless every stage completed work with p99 > 0 and zero 5xx/transport errors")
	baselineFile := flag.String("baseline", "", "committed report to diff against: fail -check on >2x p99 regression or new transport errors")
	requireClean := flag.String("require-clean", "", "comma-separated tenants that must see zero 5xx/transport/503 (with -check)")
	requireShed := flag.String("require-shed", "", "comma-separated tenants that must see at least one 429/503 across the run (with -check)")
	maxCleanP99 := flag.Float64("max-clean-p99-ms", 0, "p99 bound in ms for -require-clean tenants (0 = unbounded)")
	flag.Parse()

	if *target == "" {
		log.Fatal("thermload: -target is required")
	}
	if *apiFlag != "v1" && *apiFlag != "v2" {
		log.Fatalf("thermload: -api must be v1 or v2, got %q", *apiFlag)
	}
	rates, err := parseRates(*stages)
	if err != nil {
		log.Fatalf("thermload: %v", err)
	}
	names := splitList(*kernels)
	if len(names) == 0 {
		log.Fatal("thermload: -kernels must name at least one kernel")
	}
	tenants, err := parseTenants(*tenantsFlag)
	if err != nil {
		log.Fatalf("thermload: %v", err)
	}
	if len(tenants) == 0 {
		tenants = []tenantSpec{{token: *authToken, weight: 1}}
	}

	cfg := loadConfig{
		client:  &http.Client{Timeout: *timeout},
		target:  strings.TrimRight(*target, "/"),
		api:     *apiFlag,
		unique:  *unique,
		specs:   buildMatrix(names),
		tenants: tenants,
		picker:  buildPicker(tenants),
		timeout: *timeout,
		salt:    &atomic.Int64{},
	}
	rep := report{
		Target:        cfg.target,
		API:           cfg.api,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		StageDuration: stageDur.Seconds(),
		Kernels:       names,
	}
	for _, tn := range tenants {
		if tn.name != "" {
			rep.Tenants = append(rep.Tenants, tn.name)
		}
	}

	for _, rate := range rates {
		log.Printf("thermload: stage %.4g req/s for %s against %s (%s)", rate, *stageDur, cfg.target, cfg.api)
		res := runStage(cfg, rate, *stageDur)
		log.Printf("thermload: stage %.4g req/s: sent=%d completed=%d achieved=%.4g req/s p50=%.3gms p95=%.3gms p99=%.3gms err={429:%d 503:%d 4xx:%d 5xx:%d transport:%d}",
			rate, res.Sent, res.Completed, res.AchievedRPS, res.P50Ms, res.P95Ms, res.P99Ms,
			res.Errors.RateLimited, res.Errors.Capacity, res.Errors.Client4xx,
			res.Errors.Server5xx, res.Errors.Transport)
		for _, sl := range res.Slowest {
			extra := ""
			if sl.JobID != "" {
				extra = " job=" + sl.JobID
			}
			if sl.Tenant != "" {
				extra += " tenant=" + sl.Tenant
			}
			log.Printf("thermload:   slow %.4gms trace=%s%s", sl.LatencyMs, sl.TraceID, extra)
		}
		for _, name := range rep.Tenants {
			if tr := res.Tenants[name]; tr != nil {
				log.Printf("thermload:   tenant %s: sent=%d completed=%d p50=%.3gms p99=%.3gms err={429:%d 503:%d 4xx:%d 5xx:%d transport:%d}",
					name, tr.Sent, tr.Completed, tr.P50Ms, tr.P99Ms,
					tr.Errors.RateLimited, tr.Errors.Capacity, tr.Errors.Client4xx,
					tr.Errors.Server5xx, tr.Errors.Transport)
			}
		}
		rep.Stages = append(rep.Stages, res)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("thermload: encoding report: %v", err)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, _ = os.Stdout.Write(doc)
	} else if err := os.WriteFile(*out, doc, 0o644); err != nil {
		log.Fatalf("thermload: writing %s: %v", *out, err)
	} else {
		log.Printf("thermload: wrote %s", *out)
	}

	if *check {
		gates := checkGates{
			clean:       splitList(*requireClean),
			shed:        splitList(*requireShed),
			maxCleanP99: *maxCleanP99,
		}
		if *baselineFile != "" {
			base, err := loadReport(*baselineFile)
			if err != nil {
				log.Fatalf("thermload: baseline: %v", err)
			}
			gates.baseline = base
		}
		if err := checkReport(rep, gates); err != nil {
			log.Fatalf("thermload: check failed: %v", err)
		}
		log.Printf("thermload: check passed (%d stages, zero 5xx/transport)", len(rep.Stages))
	}
}

// parseRates reads the -stages list.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, f := range splitList(s) {
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			return nil, fmt.Errorf("invalid stage rate %q", f)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-stages must name at least one rate")
	}
	return rates, nil
}

// parseTenants reads the -tenants list: name:token[:priority[:weight]].
func parseTenants(s string) ([]tenantSpec, error) {
	var out []tenantSpec
	seen := map[string]bool{}
	for _, entry := range splitList(s) {
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 4 || parts[0] == "" {
			return nil, fmt.Errorf("invalid -tenants entry %q (want name:token[:priority[:weight]])", entry)
		}
		tn := tenantSpec{name: parts[0], token: parts[1], weight: 1}
		if seen[tn.name] {
			return nil, fmt.Errorf("duplicate tenant %q in -tenants", tn.name)
		}
		seen[tn.name] = true
		if len(parts) >= 3 && parts[2] != "" {
			p, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("tenant %s: invalid priority %q", tn.name, parts[2])
			}
			tn.prio = p
		}
		if len(parts) == 4 {
			w, err := strconv.Atoi(parts[3])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("tenant %s: invalid weight %q (want >= 1)", tn.name, parts[3])
			}
			tn.weight = w
		}
		out = append(out, tn)
	}
	return out, nil
}

// buildPicker flattens tenant weights into an arrival schedule: a
// tenant with weight w owns w of every sum(weights) slots, interleaved
// round-robin so no tenant bursts.
func buildPicker(tenants []tenantSpec) []int {
	var picker []int
	remaining := make([]int, len(tenants))
	for i, tn := range tenants {
		remaining[i] = tn.weight
	}
	for {
		done := true
		for i := range tenants {
			if remaining[i] > 0 {
				picker = append(picker, i)
				remaining[i]--
				done = false
			}
		}
		if done {
			return picker
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// buildMatrix is the kernel × policy request matrix — the same shape
// as the 99-job experiment sweep, so warm traffic hits the pool's
// cache the way real re-runs do.
func buildMatrix(kernels []string) []spec {
	policies := []string{"first-free", "random", "chessboard", "round-robin", "coldest", "spread-max"}
	var specs []spec
	for _, k := range kernels {
		for _, p := range policies {
			specs = append(specs, spec{Kernel: k, Options: map[string]any{"policy": p}})
		}
	}
	return specs
}

// body renders arrival i's request body for tenant tn. With -unique,
// each body carries a process-unique Delta salt so no two arrivals
// collapse onto one job ID — the queue sees every one of them.
func (cfg loadConfig) body(i int, tn tenantSpec) []byte {
	sp := cfg.specs[i%len(cfg.specs)]
	opts := make(map[string]any, len(sp.Options)+1)
	for k, v := range sp.Options {
		opts[k] = v
	}
	if cfg.unique {
		opts["Delta"] = 0.05 + float64(cfg.salt.Add(1))*1e-9
	}
	out := spec{Kernel: sp.Kernel, Options: opts}
	if cfg.api == "v2" {
		out.Priority = tn.prio
	}
	b, err := json.Marshal(out)
	if err != nil {
		log.Fatalf("thermload: encoding spec: %v", err)
	}
	return b
}

// outcome is one request's classification.
type outcome struct {
	tenant  string
	traceID string // the trace the request was offered under
	jobID   string // v2 only: the job the submit resolved to
	latency time.Duration
	status  int  // 0 on transport failure
	ok      bool // 2xx with (v2) a done terminal state
}

// runStage offers rate req/s for dur: the arrival ticker fires on
// schedule no matter how many requests are outstanding (open loop),
// then the stage waits for its stragglers so percentiles cover every
// arrival it generated. Arrivals interleave tenants by weight.
func runStage(cfg loadConfig, rate float64, dur time.Duration) stageResult {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(dur)
	defer deadline.Stop()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var outcomes []outcome

	sent := 0
	sentBy := map[string]int{}
	start := time.Now()
launch:
	for {
		select {
		case <-deadline.C:
			break launch
		case <-ticker.C:
			tn := cfg.tenants[cfg.picker[sent%len(cfg.picker)]]
			body := cfg.body(sent, tn)
			sent++
			sentBy[tn.name]++
			wg.Add(1)
			go func() {
				defer wg.Done()
				var o outcome
				if cfg.api == "v2" {
					o = cfg.oneV2Request(tn, body)
				} else {
					o = cfg.oneV1Request(tn, body)
				}
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
			}()
		}
	}
	offered := time.Since(start)
	wg.Wait() // stragglers finish or hit the client timeout

	res := stageResult{
		OfferedRPS:   rate,
		DurationSecs: dur.Seconds(),
		Sent:         sent,
	}
	multi := len(cfg.tenants) > 1 || cfg.tenants[0].name != ""
	if multi {
		res.Tenants = make(map[string]*tenantResult, len(cfg.tenants))
		for _, tn := range cfg.tenants {
			if tn.name != "" {
				res.Tenants[tn.name] = &tenantResult{Sent: sentBy[tn.name]}
			}
		}
	}
	var lat []float64
	latBy := map[string][]float64{}
	for _, o := range outcomes {
		e := &res.Errors
		tr := res.Tenants[o.tenant] // nil for unnamed
		if tr != nil {
			e = &tr.Errors // counted below into the stage too
		}
		switch {
		case o.ok:
			res.Completed++
			ms := float64(o.latency) / float64(time.Millisecond)
			lat = append(lat, ms)
			if tr != nil {
				tr.Completed++
				latBy[o.tenant] = append(latBy[o.tenant], ms)
			}
			continue
		case o.status == http.StatusTooManyRequests:
			e.RateLimited++
		case o.status == http.StatusServiceUnavailable:
			e.Capacity++
		case o.status >= 500:
			e.Server5xx++
		case o.status >= 400:
			e.Client4xx++
		default:
			e.Transport++
		}
		if tr != nil { // roll the tenant's error up into the stage total
			res.Errors = addErrs(res.Errors, classifyOne(o))
		}
	}
	if offered > 0 {
		res.AchievedRPS = round3(float64(res.Completed) / offered.Seconds())
	}
	sort.Float64s(lat)
	res.P50Ms = round3(percentile(lat, 0.50))
	res.P95Ms = round3(percentile(lat, 0.95))
	res.P99Ms = round3(percentile(lat, 0.99))
	if n := len(lat); n > 0 {
		res.MaxMs = round3(lat[n-1])
	}
	for name, tl := range latBy {
		sort.Float64s(tl)
		tr := res.Tenants[name]
		tr.P50Ms = round3(percentile(tl, 0.50))
		tr.P99Ms = round3(percentile(tl, 0.99))
		tr.MaxMs = round3(tl[len(tl)-1])
	}
	// The slow-outlier list: worst completed arrivals first, each with
	// the trace (and, on v2, job) ID that resolves it server-side.
	slow := make([]outcome, 0, res.Completed)
	for _, o := range outcomes {
		if o.ok && o.traceID != "" {
			slow = append(slow, o)
		}
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].latency > slow[j].latency })
	if len(slow) > slowestN {
		slow = slow[:slowestN]
	}
	for _, o := range slow {
		res.Slowest = append(res.Slowest, slowRequest{
			TraceID: o.traceID, JobID: o.jobID, Tenant: o.tenant,
			LatencyMs: round3(float64(o.latency) / float64(time.Millisecond)),
		})
	}
	return res
}

// classifyOne maps one failed outcome onto an errs increment.
func classifyOne(o outcome) errs {
	switch {
	case o.ok:
		return errs{}
	case o.status == http.StatusTooManyRequests:
		return errs{RateLimited: 1}
	case o.status == http.StatusServiceUnavailable:
		return errs{Capacity: 1}
	case o.status >= 500:
		return errs{Server5xx: 1}
	case o.status >= 400:
		return errs{Client4xx: 1}
	default:
		return errs{Transport: 1}
	}
}

func addErrs(a, b errs) errs {
	a.RateLimited += b.RateLimited
	a.Capacity += b.Capacity
	a.Client4xx += b.Client4xx
	a.Server5xx += b.Server5xx
	a.Transport += b.Transport
	return a
}

// oneV1Request issues one POST /v1/compile and classifies it.
func (cfg loadConfig) oneV1Request(tn tenantSpec, body []byte) outcome {
	sc := trace.New()
	req, err := http.NewRequest(http.MethodPost, cfg.target+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		return outcome{tenant: tn.name, traceID: sc.TraceID}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.TraceHeader, sc.Header())
	if tn.token != "" {
		req.Header.Set("Authorization", "Bearer "+tn.token)
	}
	start := time.Now()
	resp, err := cfg.client.Do(req)
	if err != nil {
		return outcome{tenant: tn.name, traceID: sc.TraceID, latency: time.Since(start)}
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return outcome{
		tenant:  tn.name,
		traceID: sc.TraceID,
		latency: time.Since(start),
		status:  resp.StatusCode,
		ok:      resp.StatusCode/100 == 2,
	}
}

// oneV2Request submits one job and long-polls it to a terminal state;
// latency covers submit through terminal. Classification attributes
// the serving plane's verdicts: a 429 submit is the tenant's own quota,
// a 503 submit is pool admission, and a job that terminally failed
// because the queue shed it also counts as 503 — the shed happened
// after admission, but it is the same "pool was saturated" signal. A
// job still live when the timeout expires counts as 503 too: the pool
// did not serve it in time.
func (cfg loadConfig) oneV2Request(tn tenantSpec, body []byte) outcome {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	sc := trace.New()
	start := time.Now()
	jobID := ""
	fail := func(status int) outcome {
		return outcome{tenant: tn.name, traceID: sc.TraceID, jobID: jobID,
			latency: time.Since(start), status: status}
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.target+"/v2/jobs", bytes.NewReader(body))
	if err != nil {
		return outcome{tenant: tn.name, traceID: sc.TraceID}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.TraceHeader, sc.Header())
	if tn.token != "" {
		req.Header.Set("Authorization", "Bearer "+tn.token)
	}
	resp, err := cfg.client.Do(req)
	if err != nil {
		return fail(0)
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fail(resp.StatusCode)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error,omitempty"`
	}
	if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
		return fail(0)
	}
	jobID = st.ID

	for {
		switch st.State {
		case "done":
			return outcome{tenant: tn.name, traceID: sc.TraceID, jobID: jobID,
				latency: time.Since(start), status: resp.StatusCode, ok: true}
		case "failed":
			if strings.Contains(st.Error, "shed") {
				return fail(http.StatusServiceUnavailable)
			}
			return fail(http.StatusUnprocessableEntity)
		case "expired":
			return fail(http.StatusGatewayTimeout)
		}
		remaining := time.Until(start.Add(cfg.timeout))
		if remaining <= 0 {
			return fail(http.StatusServiceUnavailable) // never served in time
		}
		waitMS := remaining.Milliseconds()
		if waitMS > 10_000 {
			waitMS = 10_000
		}
		wreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("%s/v2/jobs/%s/wait?timeout_ms=%d", cfg.target, st.ID, waitMS), nil)
		if err != nil {
			return fail(0)
		}
		wreq.Header.Set(server.TraceHeader, sc.Header())
		if tn.token != "" {
			wreq.Header.Set("Authorization", "Bearer "+tn.token)
		}
		wresp, err := cfg.client.Do(wreq)
		if err != nil {
			return fail(0)
		}
		wdata, _ := io.ReadAll(io.LimitReader(wresp.Body, 1<<20))
		wresp.Body.Close()
		// 504 carries the expired JobStatus; other non-2xx are errors.
		if wresp.StatusCode/100 != 2 && wresp.StatusCode != http.StatusGatewayTimeout {
			return fail(wresp.StatusCode)
		}
		if err := json.Unmarshal(wdata, &st); err != nil {
			return fail(0)
		}
	}
}

// percentile reads the p-quantile from an ASCENDING-sorted slice
// (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// loadReport reads a committed BENCH_LOAD.json for -baseline.
func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return &rep, nil
}

// checkGates parameterizes checkReport beyond the base smoke
// invariants.
type checkGates struct {
	clean       []string // tenants that must see zero 5xx/transport/503
	shed        []string // tenants that must see >= 1 429/503 somewhere
	maxCleanP99 float64  // p99 bound for clean tenants (0 = none)
	baseline    *report  // committed report to diff against (nil = none)
}

// baselineP99FloorMs is the absolute p99 below which regressions never
// fail the gate: doubling a 3 ms p99 is noise, doubling 80 ms is not.
const baselineP99FloorMs = 25

// checkReport is the -check smoke gate.
func checkReport(rep report, gates checkGates) error {
	if len(rep.Stages) == 0 {
		return fmt.Errorf("no stages ran")
	}
	for _, st := range rep.Stages {
		if st.Completed == 0 {
			return fmt.Errorf("stage %.4g req/s completed no requests", st.OfferedRPS)
		}
		if st.P99Ms <= 0 {
			return fmt.Errorf("stage %.4g req/s has non-positive p99 (%.3g ms)", st.OfferedRPS, st.P99Ms)
		}
		if st.Errors.Server5xx > 0 || st.Errors.Transport > 0 {
			return fmt.Errorf("stage %.4g req/s saw %d 5xx and %d transport errors",
				st.OfferedRPS, st.Errors.Server5xx, st.Errors.Transport)
		}
		for _, name := range gates.clean {
			tr := st.Tenants[name]
			if tr == nil {
				return fmt.Errorf("stage %.4g req/s has no block for clean tenant %q", st.OfferedRPS, name)
			}
			if tr.Errors.Server5xx > 0 || tr.Errors.Transport > 0 || tr.Errors.Capacity > 0 {
				return fmt.Errorf("clean tenant %q was not served cleanly at %.4g req/s: 5xx=%d transport=%d 503=%d",
					name, st.OfferedRPS, tr.Errors.Server5xx, tr.Errors.Transport, tr.Errors.Capacity)
			}
			if tr.Completed == 0 {
				return fmt.Errorf("clean tenant %q completed nothing at %.4g req/s", name, st.OfferedRPS)
			}
			if gates.maxCleanP99 > 0 && tr.P99Ms > gates.maxCleanP99 {
				return fmt.Errorf("clean tenant %q p99 %.3g ms exceeds bound %.3g ms at %.4g req/s",
					name, tr.P99Ms, gates.maxCleanP99, st.OfferedRPS)
			}
		}
	}
	for _, name := range gates.shed {
		total := 0
		for _, st := range rep.Stages {
			if tr := st.Tenants[name]; tr != nil {
				total += tr.Errors.RateLimited + tr.Errors.Capacity
			}
		}
		if total == 0 {
			return fmt.Errorf("tenant %q was never shed (zero 429/503) — the pool did not push back", name)
		}
	}
	if gates.baseline != nil {
		if err := diffBaseline(rep, *gates.baseline); err != nil {
			return err
		}
	}
	return nil
}

// diffBaseline compares a fresh report against a committed one,
// stage-by-stage where offered rates line up: >2x p99 regressions past
// the absolute floor fail, as do transport errors the baseline did not
// have. Stages without a matching baseline rate are skipped — the gate
// judges drift, not configuration changes.
func diffBaseline(rep, base report) error {
	byRate := make(map[float64]stageResult, len(base.Stages))
	for _, st := range base.Stages {
		byRate[st.OfferedRPS] = st
	}
	matched := 0
	for _, st := range rep.Stages {
		bst, ok := byRate[st.OfferedRPS]
		if !ok {
			continue
		}
		matched++
		if bst.P99Ms > 0 && st.P99Ms > baselineP99FloorMs && st.P99Ms > 2*bst.P99Ms {
			return fmt.Errorf("stage %.4g req/s p99 regressed %.3g ms -> %.3g ms (>2x baseline)",
				st.OfferedRPS, bst.P99Ms, st.P99Ms)
		}
		if st.Errors.Transport > 0 && bst.Errors.Transport == 0 {
			return fmt.Errorf("stage %.4g req/s has %d transport errors; baseline had none",
				st.OfferedRPS, st.Errors.Transport)
		}
	}
	if matched == 0 {
		return fmt.Errorf("baseline has no stage rates in common with this run")
	}
	return nil
}
