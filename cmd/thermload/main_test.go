package main

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestParseTenants(t *testing.T) {
	tns, err := parseTenants("high:tok-h:10:3, low:tok-l:0 ,solo:tok-s")
	if err != nil {
		t.Fatalf("parseTenants: %v", err)
	}
	want := []tenantSpec{
		{name: "high", token: "tok-h", prio: 10, weight: 3},
		{name: "low", token: "tok-l", prio: 0, weight: 1},
		{name: "solo", token: "tok-s", prio: 0, weight: 1},
	}
	if len(tns) != len(want) {
		t.Fatalf("got %d tenants, want %d", len(tns), len(want))
	}
	for i, w := range want {
		if tns[i] != w {
			t.Errorf("tenant %d = %+v, want %+v", i, tns[i], w)
		}
	}

	if tns, err := parseTenants(""); err != nil || tns != nil {
		t.Errorf("empty list: got %v, %v; want nil, nil", tns, err)
	}
	for _, bad := range []string{
		"nameonly",      // no token
		":tok",          // empty name
		"a:t:notanint",  // bad priority
		"a:t:1:0",       // weight < 1
		"a:t:1:2:extra", // too many fields
		"dup:t1,dup:t2", // duplicate name
	} {
		if _, err := parseTenants(bad); err == nil {
			t.Errorf("parseTenants(%q): expected error", bad)
		}
	}
}

func TestBuildPickerInterleavesWeights(t *testing.T) {
	tenants := []tenantSpec{
		{name: "a", weight: 3},
		{name: "b", weight: 1},
	}
	picker := buildPicker(tenants)
	if len(picker) != 4 {
		t.Fatalf("picker length %d, want 4", len(picker))
	}
	counts := map[int]int{}
	for _, i := range picker {
		counts[i]++
	}
	if counts[0] != 3 || counts[1] != 1 {
		t.Fatalf("picker shares %v, want a=3 b=1", counts)
	}
	// Round-robin interleave: the first pass covers every live tenant,
	// so b appears in the first two slots rather than after all of a.
	if picker[0] != 0 || picker[1] != 1 {
		t.Errorf("picker %v not interleaved (want [0 1 0 0])", picker)
	}
}

func okStage(rate float64) stageResult {
	return stageResult{OfferedRPS: rate, Sent: 10, Completed: 10, P50Ms: 2, P99Ms: 5}
}

func TestCheckReportBaseInvariants(t *testing.T) {
	rep := report{Stages: []stageResult{okStage(25)}}
	if err := checkReport(rep, checkGates{}); err != nil {
		t.Fatalf("clean report failed: %v", err)
	}

	if err := checkReport(report{}, checkGates{}); err == nil {
		t.Error("empty report passed")
	}
	bad := rep
	bad.Stages = []stageResult{{OfferedRPS: 25, Sent: 10}}
	if err := checkReport(bad, checkGates{}); err == nil {
		t.Error("zero-completed stage passed")
	}
	bad.Stages = []stageResult{{OfferedRPS: 25, Sent: 10, Completed: 10, P99Ms: 4, Errors: errs{Server5xx: 1}}}
	if err := checkReport(bad, checkGates{}); err == nil {
		t.Error("5xx stage passed")
	}
	bad.Stages = []stageResult{{OfferedRPS: 25, Sent: 10, Completed: 10, P99Ms: 4, Errors: errs{Transport: 2}}}
	if err := checkReport(bad, checkGates{}); err == nil {
		t.Error("transport-error stage passed")
	}
}

func TestCheckReportTenantGates(t *testing.T) {
	st := okStage(50)
	st.Tenants = map[string]*tenantResult{
		"high": {Sent: 8, Completed: 8, P99Ms: 12},
		"low":  {Sent: 8, Completed: 2, P99Ms: 30, Errors: errs{RateLimited: 4, Capacity: 2}},
	}
	rep := report{Stages: []stageResult{st}}

	gates := checkGates{clean: []string{"high"}, shed: []string{"low"}, maxCleanP99: 50}
	if err := checkReport(rep, gates); err != nil {
		t.Fatalf("two-tenant shed report failed: %v", err)
	}

	// Clean tenant hit capacity: must fail.
	st.Tenants["high"].Errors.Capacity = 1
	if err := checkReport(rep, gates); err == nil || !strings.Contains(err.Error(), "high") {
		t.Errorf("503 on clean tenant passed gate: %v", err)
	}
	st.Tenants["high"].Errors.Capacity = 0

	// Clean tenant over the p99 bound: must fail.
	gates.maxCleanP99 = 10
	if err := checkReport(rep, gates); err == nil || !strings.Contains(err.Error(), "p99") {
		t.Errorf("p99 over bound passed gate: %v", err)
	}
	gates.maxCleanP99 = 50

	// Shed tenant that was never pushed back: must fail.
	st.Tenants["low"].Errors = errs{}
	if err := checkReport(rep, gates); err == nil || !strings.Contains(err.Error(), "never shed") {
		t.Errorf("unshed tenant passed -require-shed: %v", err)
	}
	st.Tenants["low"].Errors = errs{RateLimited: 4, Capacity: 2}

	// A clean tenant missing from a stage is a config error, not a pass.
	gates.clean = []string{"ghost"}
	if err := checkReport(rep, gates); err == nil {
		t.Error("missing clean tenant passed gate")
	}
}

func TestDiffBaseline(t *testing.T) {
	base := report{Stages: []stageResult{okStage(25), okStage(50)}}
	fresh := report{Stages: []stageResult{okStage(25), okStage(50)}}
	if err := diffBaseline(fresh, base); err != nil {
		t.Fatalf("identical reports failed: %v", err)
	}

	// >2x p99 regression past the floor fails.
	reg := fresh
	reg.Stages = []stageResult{okStage(25), {OfferedRPS: 50, Sent: 10, Completed: 10, P99Ms: 2 * baselineP99FloorMs}}
	base2 := report{Stages: []stageResult{okStage(25), {OfferedRPS: 50, Sent: 10, Completed: 10, P99Ms: baselineP99FloorMs / 2}}}
	if err := diffBaseline(reg, base2); err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("2x regression passed: %v", err)
	}

	// The same ratio below the absolute floor is noise, not a failure.
	small := report{Stages: []stageResult{{OfferedRPS: 25, Sent: 10, Completed: 10, P99Ms: 8}}}
	smallBase := report{Stages: []stageResult{{OfferedRPS: 25, Sent: 10, Completed: 10, P99Ms: 2}}}
	if err := diffBaseline(small, smallBase); err != nil {
		t.Errorf("sub-floor regression failed the gate: %v", err)
	}

	// New transport errors fail even with a fine p99.
	tr := report{Stages: []stageResult{{OfferedRPS: 25, Sent: 10, Completed: 9, P99Ms: 3, Errors: errs{Transport: 1}}}}
	if err := diffBaseline(tr, base); err == nil || !strings.Contains(err.Error(), "transport") {
		t.Errorf("new transport errors passed: %v", err)
	}

	// Disjoint stage rates: the gate must refuse, not silently pass.
	other := report{Stages: []stageResult{okStage(999)}}
	if err := diffBaseline(other, base); err == nil {
		t.Error("disjoint baseline passed")
	}
}

func TestBodySaltsUniqueRequests(t *testing.T) {
	cfg := loadConfig{
		api:     "v2",
		unique:  true,
		specs:   buildMatrix([]string{"dot"}),
		tenants: []tenantSpec{{name: "a", prio: 7, weight: 1}},
	}
	cfg.salt = &atomic.Int64{}
	b1 := cfg.body(0, cfg.tenants[0])
	b2 := cfg.body(0, cfg.tenants[0])
	if string(b1) == string(b2) {
		t.Fatalf("unique bodies identical: %s", b1)
	}
	if !strings.Contains(string(b1), `"priority":7`) {
		t.Errorf("v2 body missing priority: %s", b1)
	}
	cfg.api, cfg.unique = "v1", false
	b3 := cfg.body(0, cfg.tenants[0])
	if strings.Contains(string(b3), "priority") || strings.Contains(string(b3), "Delta") {
		t.Errorf("v1 non-unique body carries extras: %s", b3)
	}
}
